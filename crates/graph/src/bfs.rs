//! Unweighted BFS and connected components.

use std::collections::VecDeque;

use crate::dijkstra::WeightedGraph;

/// Hop counts from `source` to every node (ignoring weights); unreachable
/// nodes get `u32::MAX`.
pub fn bfs_hops<G: WeightedGraph + ?Sized>(g: &G, source: u32) -> Vec<u32> {
    let n = g.node_count();
    let mut hops = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    hops[source as usize] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let hu = hops[u as usize];
        g.for_each_neighbor(u, &mut |v, _, _| {
            if hops[v as usize] == u32::MAX {
                hops[v as usize] = hu + 1;
                q.push_back(v);
            }
        });
    }
    hops
}

/// Component label for every node (labels are 0-based and dense).
pub fn connected_components<G: WeightedGraph + ?Sized>(g: &G) -> Vec<u32> {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut q = VecDeque::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            g.for_each_neighbor(u, &mut |v, _, _| {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    q.push_back(v);
                }
            });
        }
        next += 1;
    }
    label
}

/// Size of the largest connected component.
pub fn largest_component<G: WeightedGraph + ?Sized>(g: &G) -> usize {
    let labels = connected_components(g);
    if labels.is_empty() {
        return 0;
    }
    let k = labels.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut counts = vec![0usize; k];
    for &l in &labels {
        counts[l as usize] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::{RoadEdge, RoadNetwork};
    use ct_spatial::Point;

    fn two_islands() -> RoadNetwork {
        // Component A: 0-1-2; component B: 3-4.
        let positions = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges = vec![
            RoadEdge { u: 0, v: 1, length: 1.0 },
            RoadEdge { u: 1, v: 2, length: 1.0 },
            RoadEdge { u: 3, v: 4, length: 1.0 },
        ];
        RoadNetwork::new(positions, edges)
    }

    #[test]
    fn hops_and_unreachable() {
        let g = two_islands();
        let h = bfs_hops(&g, 0);
        assert_eq!(h[0], 0);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 2);
        assert_eq!(h[3], u32::MAX);
    }

    #[test]
    fn components_are_labeled_densely() {
        let g = two_islands();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(largest_component(&g), 3);
    }

    #[test]
    fn empty_graph() {
        let g = RoadNetwork::new(vec![], vec![]);
        assert_eq!(largest_component(&g), 0);
        assert!(connected_components(&g).is_empty());
    }

    #[test]
    fn singleton_nodes_are_own_components() {
        let positions = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        let g = RoadNetwork::new(positions, vec![]);
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 1, 2]);
        assert_eq!(largest_component(&g), 1);
    }
}
