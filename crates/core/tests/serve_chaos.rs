//! Chaos contract of the serving layer (`ct_core::serve`): with faults
//! scheduled at every registered failpoint — panics deep inside the
//! session refresh, panics *while the snapshot write lock is held*,
//! injected errors, delays — a concurrent plan/commit workload must
//!
//! * never deadlock or wedge (every test here terminates);
//! * never lose a reader: checkouts and plans succeed through poisoned
//!   locks, and failed commits leave the published snapshot untouched
//!   (same `Arc`, same generation);
//! * keep commit generations gapless and every *applied* commit
//!   bit-identical to the sequential `plan_multiple_reference` oracle —
//!   fault storms may slow the history down, never fork it;
//! * fully recover once the schedule is exhausted: a fresh plan → commit
//!   applies and clears the degraded-health streak.
//!
//! Fault schedules are hit-count based ([`ct_core::FailPlan`]), so every
//! failing case replays exactly from its seed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

use ct_core::fault::{self, site};
use ct_core::{
    plan_multiple_reference, CommitOutcome, CommitTicket, CtBusParams, FailPlan, PlannerMode,
    RoutePlan, ServePolicy, ServeState,
};
use ct_data::{City, CityConfig, DemandModel};
use proptest::prelude::*;

/// Installed once per test binary: injected panics are expected by the
/// hundreds here, real ones still report through the default hook.
fn quiet() {
    static ONCE: Once = Once::new();
    ONCE.call_once(fault::silence_injected_panics);
}

fn small_city(seed: u64) -> (City, DemandModel) {
    let city = CityConfig::small().seed(seed).generate();
    let demand = DemandModel::from_city(&city);
    (city, demand)
}

/// Trimmed parameters so the schedule × thread matrix stays fast.
fn quick_params() -> CtBusParams {
    let mut params = CtBusParams::small_defaults();
    params.k = 6;
    params.sn = 80;
    params.it_max = 400;
    params.trace_probes = 8;
    params.lanczos_steps = 6;
    params
}

/// Bound on commit attempts per worker — generous (schedules are finite,
/// every retry burns scheduled hits) but keeps a regression from hanging
/// the suite instead of failing it.
const MAX_ATTEMPTS: usize = 64;

/// Races `threads` workers (even = plan-and-commit with retries, odd =
/// read-only planners) over `state` until `target` commits applied or the
/// network saturates. `Failed` and `Stale` re-plan on a fresh checkout;
/// `Overloaded` yields and retries; `Invalid` fails the test (these
/// workers only submit plans computed on the ticket's own snapshot).
/// Returns the applied `(generation, plan)` history in order.
fn chaos_race(state: &ServeState, threads: usize, target: u64) -> Vec<(u64, RoutePlan)> {
    let applied: Mutex<Vec<(u64, RoutePlan)>> = Mutex::new(Vec::new());
    let exhausted = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (applied, exhausted) = (&applied, &exhausted);
            scope.spawn(move || {
                let committer = worker % 2 == 0 || threads == 1;
                let mut attempts = 0usize;
                while state.generation() < target && !exhausted.load(Ordering::Acquire) {
                    let snapshot = state.current();
                    let plan = snapshot.session().plan(PlannerMode::EtaPre).best;
                    if !committer {
                        continue;
                    }
                    if plan.is_empty() || plan.objective <= 0.0 {
                        exhausted.store(true, Ordering::Release);
                        break;
                    }
                    attempts += 1;
                    assert!(
                        attempts <= MAX_ATTEMPTS,
                        "worker {worker} stuck: {attempts} commit attempts without reaching \
                         generation {target} (service wedged?)"
                    );
                    match state.commit(CommitTicket::new(&snapshot, plan.clone())) {
                        CommitOutcome::Applied { generation, .. } => {
                            applied.lock().unwrap().push((generation, plan));
                        }
                        // Lost the race or ate an injected fault: the
                        // recovery protocol is the same — fresh checkout,
                        // re-plan, resubmit.
                        CommitOutcome::Stale { .. } | CommitOutcome::Failed { .. } => {}
                        CommitOutcome::Overloaded { .. } => std::thread::yield_now(),
                        CommitOutcome::Invalid { reason } => {
                            panic!("valid ticket rejected as invalid: {reason}")
                        }
                        CommitOutcome::Empty => unreachable!("checked non-empty"),
                    }
                }
            });
        }
    });
    let mut applied = applied.into_inner().unwrap();
    applied.sort_by_key(|(generation, _)| *generation);
    applied
}

/// Asserts the full post-chaos contract on `state`: gapless generations,
/// applied history bit-identical to the sequential oracle, and a live
/// service (fresh plan + commit still work).
fn assert_history_matches_oracle(
    state: &ServeState,
    city: &City,
    demand: &DemandModel,
    params: CtBusParams,
    applied: &[(u64, RoutePlan)],
) {
    let rounds = applied.len();
    let generations: Vec<u64> = applied.iter().map(|(g, _)| *g).collect();
    assert_eq!(
        generations,
        (1..=rounds as u64).collect::<Vec<_>>(),
        "commit generations must be gapless and ordered"
    );
    assert_eq!(state.generation(), rounds as u64, "generation diverged from applied history");
    let stats = state.stats();
    assert_eq!(
        stats.commits_applied, rounds as u64,
        "applied counter diverged from collected history"
    );
    let reference = plan_multiple_reference(city, demand, params, rounds, PlannerMode::EtaPre);
    assert_eq!(reference.len(), rounds, "oracle stopped before the service did");
    for (i, (_, plan)) in applied.iter().enumerate() {
        assert_eq!(plan, &reference[i], "applied commit {i} diverged from the oracle");
    }
}

/// Recovery: with the schedule burned down, a fresh plan → commit must
/// apply (or the network must be saturated) and clear the failure streak.
fn assert_recovers(state: &ServeState) {
    for _ in 0..MAX_ATTEMPTS {
        let snapshot = state.current();
        let plan = snapshot.session().plan(PlannerMode::EtaPre).best;
        if plan.is_empty() || plan.objective <= 0.0 {
            return; // saturated: nothing left to commit, but reads still work
        }
        match state.commit(CommitTicket::new(&snapshot, plan)) {
            CommitOutcome::Applied { .. } => {
                let stats = state.stats();
                assert_eq!(stats.consecutive_failures, 0, "apply must clear the failure streak");
                assert!(!stats.degraded(), "service still degraded after a successful apply");
                return;
            }
            CommitOutcome::Invalid { reason } => panic!("recovery ticket invalid: {reason}"),
            _ => {} // leftover fault / stale: retry
        }
    }
    panic!("service did not recover within {MAX_ATTEMPTS} attempts");
}

// ── Satellite regression: readers survive a poisoned snapshot lock ─────

#[test]
fn readers_survive_snapshot_lock_poisoned_mid_publish() {
    quiet();
    let (city, demand) = small_city(501);
    let params = quick_params();
    // The swap failpoint fires *while the snapshot write lock is held* —
    // this panic genuinely poisons the RwLock, the exact condition that
    // used to take down every subsequent `current()`/`session()` call.
    let faults = FailPlan::new().panic_at(site::SNAPSHOT_SWAP, 1).injector();
    let state =
        ServeState::new(city.clone(), demand.clone(), params).with_faults(Arc::clone(&faults));

    let snapshot = state.current();
    let plan = snapshot.session().plan(PlannerMode::EtaPre).best;
    assert!(!plan.is_empty());
    let outcome = state.commit(CommitTicket::new(&snapshot, plan.clone()));
    assert!(
        matches!(outcome, CommitOutcome::Failed { .. }),
        "swap panic not contained: {outcome:?}"
    );
    assert_eq!(faults.stats().panics, 1, "the scheduled swap panic did not fire");

    // Regression body: checkouts and fresh plans still succeed, from
    // multiple threads at once, on the poisoned lock.
    assert_eq!(state.generation(), 0, "failed publish moved the generation");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let snap = state.current();
                assert_eq!(snap.generation(), 0);
                let replay = snap.session().plan(PlannerMode::EtaPre).best;
                assert_eq!(replay, plan, "post-poison plan diverged");
            });
        }
    });

    // And the writer path still works: the retry publishes generation 1.
    let retry = state.current();
    assert!(state.commit(CommitTicket::new(&retry, plan)).is_applied());
    assert_eq!(state.generation(), 1);
    assert_recovers(&state);
}

// ── Failed / invalid commits publish nothing ───────────────────────────

#[test]
fn failed_commits_leave_the_published_snapshot_untouched() {
    quiet();
    let (city, demand) = small_city(502);
    let params = quick_params();
    // One fault of each kind on the apply path, then clean.
    let faults = FailPlan::new()
        .panic_at(site::COMMIT_APPLY, 1)
        .error_at(site::SNAPSHOT_PUBLISH, 1)
        .panic_at(site::SESSION_REFRESH, 2)
        .injector();
    let state =
        ServeState::new(city.clone(), demand.clone(), params).with_faults(Arc::clone(&faults));

    let before = state.current();
    let plan = before.session().plan(PlannerMode::EtaPre).best;
    assert!(!plan.is_empty());

    let mut failures = 0;
    loop {
        let snapshot = state.current();
        // Identity, not just equality: nothing may have been published.
        assert!(Arc::ptr_eq(&snapshot, &before), "a failed commit swapped the published snapshot");
        match state.commit(CommitTicket::new(&snapshot, plan.clone())) {
            CommitOutcome::Failed { reason } => {
                failures += 1;
                assert!(
                    reason.contains("injected fault at"),
                    "unexpected failure reason: {reason}"
                );
                assert_eq!(state.generation(), 0);
                assert_eq!(state.stats().consecutive_failures, failures);
            }
            CommitOutcome::Applied { generation, .. } => {
                assert_eq!(generation, 1);
                break;
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert!(failures <= 8, "schedule of 3 faults failed {failures} times");
    }
    assert_eq!(failures, 3, "each scheduled fault must fail exactly one attempt");
    let stats = state.stats();
    assert_eq!(stats.commits_failed, 3);
    assert_eq!(stats.consecutive_failures, 0);
    assert_eq!(faults.stats().fired(), 3);

    // The one applied commit is the oracle's round-0 plan.
    let reference = plan_multiple_reference(&city, &demand, params, 1, PlannerMode::EtaPre);
    assert_eq!(plan, reference[0]);
}

// ── Overload shedding ──────────────────────────────────────────────────

#[test]
fn slow_commit_sheds_the_queue_by_deadline() {
    quiet();
    let (city, demand) = small_city(503);
    let params = quick_params();
    // First apply stalls 300 ms; waiters are only willing to wait 10 ms.
    let faults = FailPlan::new().delay_at(site::COMMIT_APPLY, 1, 300).injector();
    let policy =
        ServePolicy { commit_deadline: Duration::from_millis(10), ..ServePolicy::default() };
    let state =
        ServeState::new(city, demand, params).with_faults(Arc::clone(&faults)).with_policy(policy);

    let snapshot = state.current();
    let plan = snapshot.session().plan(PlannerMode::EtaPre).best;
    assert!(!plan.is_empty());

    let (slow, fast) = std::thread::scope(|scope| {
        let slow = scope.spawn(|| {
            // Enters the writer queue first (the delay keeps it there).
            state.commit(CommitTicket::new(&snapshot, plan.clone()))
        });
        let fast = scope.spawn(|| {
            // The injector bumps its delay counter *before* sleeping, so
            // this spin provably waits until the slow commit holds the
            // writer queue inside its 300 ms stall — no timing guess.
            while faults.stats().delays == 0 {
                std::thread::yield_now();
            }
            state.commit(CommitTicket::new(&snapshot, plan.clone()))
        });
        (slow.join().unwrap(), fast.join().unwrap())
    });

    assert!(slow.is_applied(), "delayed commit must still apply: {slow:?}");
    assert!(
        matches!(fast, CommitOutcome::Overloaded { .. }),
        "waiter past the deadline must shed: {fast:?}"
    );
    assert_eq!(state.stats().commits_shed, 1);
    assert_eq!(state.generation(), 1);
    assert_recovers(&state);
}

// ── The full storm: panics at every site, concurrent workload ──────────

#[test]
fn panics_at_every_failpoint_under_concurrent_workload() {
    quiet();
    let (city, demand) = small_city(504);
    let params = quick_params();
    // Two panics at every registered failpoint, interleaved with delays.
    let mut plan = FailPlan::new();
    for (i, s) in site::ALL.iter().enumerate() {
        plan = plan.panic_at(s, 1).panic_at(s, 3).delay_at(s, 2, 1 + i as u64);
    }
    let faults = plan.injector();
    let state =
        ServeState::new(city.clone(), demand.clone(), params).with_faults(Arc::clone(&faults));

    let applied = chaos_race(&state, 4, 2);
    assert!(!applied.is_empty(), "no commit survived the storm");
    assert_history_matches_oracle(&state, &city, &demand, params, &applied);

    // Every site took its scheduled panics — the storm actually happened.
    let stats = faults.stats();
    assert_eq!(stats.panics, 2 * site::ALL.len() as u64, "a scheduled panic never fired");
    for s in site::ALL {
        assert!(faults.hits(s) >= 3, "site {s} was not driven through its schedule");
    }
    assert_recovers(&state);
}

// ── Proptest: schedules × threads × mixes ──────────────────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // However the fault schedule, thread count, and request mix interleave:
    // the race terminates (no deadlock), generations stay gapless, the
    // applied history replays the sequential oracle bit for bit, and the
    // service recovers once the schedule is exhausted.
    #[test]
    fn chaos_histories_collapse_to_the_sequential_oracle(
        city_seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        num_faults in 0usize..8,
        threads_idx in 0usize..4,
        target in 1u64..=2,
    ) {
        quiet();
        let threads = [1usize, 2, 4, 8][threads_idx];
        let (city, demand) = small_city(city_seed);
        let params = quick_params();
        let faults = FailPlan::seeded(fault_seed, &site::ALL, num_faults, 12).injector();
        let state = ServeState::new(city.clone(), demand.clone(), params)
            .with_faults(Arc::clone(&faults));

        let applied = chaos_race(&state, threads, target);

        // The race may stop short only on network saturation; whatever was
        // applied must be the sequential history, exactly.
        let rounds = applied.len();
        prop_assert!(rounds <= target as usize);
        let generations: Vec<u64> = applied.iter().map(|(g, _)| *g).collect();
        prop_assert_eq!(generations, (1..=rounds as u64).collect::<Vec<_>>());
        prop_assert_eq!(state.generation(), rounds as u64);
        let reference = plan_multiple_reference(&city, &demand, params, rounds, PlannerMode::EtaPre);
        prop_assert_eq!(reference.len(), rounds, "oracle stopped before the service did");
        for (i, (_, plan)) in applied.iter().enumerate() {
            prop_assert_eq!(
                plan, &reference[i],
                "city {} faults {}x{} threads {}: commit {} diverged",
                city_seed, fault_seed, num_faults, threads, i
            );
        }

        // Bookkeeping stayed consistent under fire.
        let stats = state.stats();
        prop_assert_eq!(stats.commits_applied, rounds as u64);
        prop_assert_eq!(stats.commits_invalid, 0, "a valid ticket was rejected as invalid");

        assert_recovers(&state);
    }
}
