//! Binary-heap Dijkstra over road and transit networks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::road::RoadNetwork;
use crate::transit::TransitNetwork;

/// A weighted undirected graph that Dijkstra can traverse.
///
/// Implemented by both network layers so one shortest-path engine serves
/// trajectory expansion (road) and the ζ(μ) metric (transit).
pub trait WeightedGraph {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Visits `(neighbor, edge_id, weight)` for every edge incident to `u`.
    fn for_each_neighbor(&self, u: u32, f: &mut dyn FnMut(u32, u32, f64));
}

// Forwarding impls so shared handles (`&G`, `Arc<G>`) traverse like the
// graph itself — `ct_data::City` keeps its road network behind an `Arc`.
impl<G: WeightedGraph + ?Sized> WeightedGraph for &G {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn for_each_neighbor(&self, u: u32, f: &mut dyn FnMut(u32, u32, f64)) {
        (**self).for_each_neighbor(u, f);
    }
}

impl<G: WeightedGraph + ?Sized> WeightedGraph for std::sync::Arc<G> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn for_each_neighbor(&self, u: u32, f: &mut dyn FnMut(u32, u32, f64)) {
        (**self).for_each_neighbor(u, f);
    }
}

impl WeightedGraph for RoadNetwork {
    fn node_count(&self) -> usize {
        self.num_nodes()
    }

    fn for_each_neighbor(&self, u: u32, f: &mut dyn FnMut(u32, u32, f64)) {
        for &(v, e) in self.neighbors(u) {
            f(v, e, self.edge(e).length);
        }
    }
}

impl WeightedGraph for TransitNetwork {
    fn node_count(&self) -> usize {
        self.num_stops()
    }

    fn for_each_neighbor(&self, u: u32, f: &mut dyn FnMut(u32, u32, f64)) {
        for &(v, e) in self.neighbors(u) {
            f(v, e, self.edge(e).length);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (distances are finite, never NaN).
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are not NaN")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A reconstructed shortest path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Total weight.
    pub dist: f64,
    /// Visited nodes, source first.
    pub nodes: Vec<u32>,
    /// Edge ids along the path (one fewer than nodes).
    pub edges: Vec<u32>,
}

/// Single-source shortest path distances to every node.
///
/// Unreachable nodes have distance `f64::INFINITY`.
pub fn dijkstra_all<G: WeightedGraph + ?Sized>(g: &G, source: u32) -> Vec<f64> {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: source });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        g.for_each_neighbor(u, &mut |v, _e, w| {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        });
    }
    dist
}

/// Full shortest-path tree from `source`: per-node distance and the
/// `(parent node, edge id)` used to reach it.
///
/// One tree amortizes path reconstruction over many destinations — this is
/// how trajectory corpora with shared origins are expanded cheaply.
pub fn dijkstra_tree<G: WeightedGraph + ?Sized>(
    g: &G,
    source: u32,
) -> (Vec<f64>, Vec<Option<(u32, u32)>>) {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: source });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        g.for_each_neighbor(u, &mut |v, e, w| {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = Some((u, e));
                heap.push(HeapEntry { dist: nd, node: v });
            }
        });
    }
    (dist, parent)
}

/// Reconstructs the path `source → target` from a [`dijkstra_tree`] parent
/// array; `None` if `target` was unreachable.
pub fn reconstruct_path(
    source: u32,
    target: u32,
    parent: &[Option<(u32, u32)>],
) -> Option<(Vec<u32>, Vec<u32>)> {
    if source == target {
        return Some((vec![source], vec![]));
    }
    parent[target as usize]?;
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while cur != source {
        let (p, e) = parent[cur as usize]?;
        edges.push(e);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some((nodes, edges))
}

/// Single-source Dijkstra truncated at `cutoff`: every node whose shortest
/// distance from `source` is ≤ `cutoff`, as `(node, distance)` pairs in
/// ascending distance order.
///
/// Uses a sparse distance map, so the cost depends on the number of settled
/// nodes rather than the graph size — this is the workhorse for HMM
/// map-matching transitions, where thousands of small neighborhoods are
/// explored per trace.
///
/// ```
/// use ct_graph::{dijkstra_bounded, RoadEdge, RoadNetwork};
/// use ct_spatial::Point;
/// let road = RoadNetwork::new(
///     (0..4).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect(),
///     (0..3).map(|i| RoadEdge { u: i, v: i + 1, length: 100.0 }).collect(),
/// );
/// let near = dijkstra_bounded(&road, 0, 150.0);
/// assert_eq!(near, vec![(0, 0.0), (1, 100.0)]); // node 2 is 200 m away
/// ```
pub fn dijkstra_bounded<G: WeightedGraph + ?Sized>(
    g: &G,
    source: u32,
    cutoff: f64,
) -> Vec<(u32, f64)> {
    let mut dist: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut settled = Vec::new();
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(HeapEntry { dist: 0.0, node: source });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > *dist.get(&u).unwrap_or(&f64::INFINITY) {
            continue;
        }
        settled.push((u, d));
        g.for_each_neighbor(u, &mut |v, _e, w| {
            let nd = d + w;
            if nd <= cutoff && nd < *dist.get(&v).unwrap_or(&f64::INFINITY) {
                dist.insert(v, nd);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        });
    }
    settled
}

/// Shortest path from `source` to `target` with early exit; `None` if
/// unreachable.
pub fn shortest_path<G: WeightedGraph + ?Sized>(
    g: &G,
    source: u32,
    target: u32,
) -> Option<PathResult> {
    PathScratch::new().shortest_path(g, source, target)
}

/// Reusable workspace for point-to-point Dijkstra queries.
///
/// [`shortest_path`] allocates (and zeroes) O(n) distance/parent arrays per
/// call; batch workloads — realizing thousands of GTFS hops over one road
/// network — pay that per hop. A `PathScratch` keeps the arrays across
/// calls and resets only the entries the previous search touched, so each
/// query costs O(settled region), not O(n). Results are bit-identical to
/// [`shortest_path`] (same heap, same tie-breaks).
#[derive(Debug, Default)]
pub struct PathScratch {
    dist: Vec<f64>,
    parent: Vec<Option<(u32, u32)>>,
    touched: Vec<u32>,
    heap: BinaryHeap<HeapEntry>,
}

impl PathScratch {
    /// Creates an empty workspace; arrays grow lazily to the graph size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shortest path from `source` to `target` with early exit; `None` if
    /// unreachable. Equivalent to [`shortest_path`], reusing this scratch.
    pub fn shortest_path<G: WeightedGraph + ?Sized>(
        &mut self,
        g: &G,
        source: u32,
        target: u32,
    ) -> Option<PathResult> {
        let n = g.node_count();
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, None);
        }
        let (dist, parent, touched, heap) =
            (&mut self.dist, &mut self.parent, &mut self.touched, &mut self.heap);
        dist[source as usize] = 0.0;
        touched.push(source);
        heap.push(HeapEntry { dist: 0.0, node: source });

        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if u == target {
                break;
            }
            if d > dist[u as usize] {
                continue;
            }
            g.for_each_neighbor(u, &mut |v, e, w| {
                let nd = d + w;
                if nd < dist[v as usize] {
                    if dist[v as usize] == f64::INFINITY {
                        touched.push(v);
                    }
                    dist[v as usize] = nd;
                    parent[v as usize] = Some((u, e));
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            });
        }

        let result = if source != target && parent[target as usize].is_none() {
            None
        } else {
            let mut nodes = vec![target];
            let mut edges = Vec::new();
            let mut cur = target;
            while cur != source {
                let (p, e) = parent[cur as usize].expect("parent chain is complete");
                edges.push(e);
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            edges.reverse();
            Some(PathResult { dist: dist[target as usize], nodes, edges })
        };

        for &t in touched.iter() {
            dist[t as usize] = f64::INFINITY;
            parent[t as usize] = None;
        }
        touched.clear();
        heap.clear();
        result
    }
}

/// Shortest paths for a batch of `(source, target)` pairs, fanned out over
/// `threads` workers (`0` = use all available cores).
///
/// Each pair is an independent early-exit Dijkstra through a per-worker
/// [`PathScratch`]; workers pull pairs off an atomic counter and results
/// are merged back by input index, so the output is bit-identical to
/// calling [`shortest_path`] per pair in order, under any thread count.
/// This is the entry point the GTFS importer uses to realize all unique
/// stop-pair corridors of a feed at once.
pub fn shortest_paths_batch<G: WeightedGraph + Sync + ?Sized>(
    g: &G,
    pairs: &[(u32, u32)],
    threads: usize,
) -> Vec<Option<PathResult>> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(pairs.len().max(1));
    if threads <= 1 {
        let mut scratch = PathScratch::new();
        return pairs.iter().map(|&(s, t)| scratch.shortest_path(g, s, t)).collect();
    }
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let mut out: Vec<Option<PathResult>> = Vec::new();
    out.resize_with(pairs.len(), || None);
    let chunks: Vec<Vec<(usize, Option<PathResult>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = PathScratch::new();
                    let mut found = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&(s, t)) = pairs.get(i) else { break };
                        found.push((i, scratch.shortest_path(g, s, t)));
                    }
                    found
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
    });
    for (i, r) in chunks.into_iter().flatten() {
        out[i] = r;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadEdge;
    use ct_spatial::Point;

    fn diamond() -> RoadNetwork {
        // 0 → 1 → 3 costs 1 + 1; 0 → 2 → 3 costs 5 + 5; direct 0 → 3 costs 2.5.
        let positions = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges = vec![
            RoadEdge { u: 0, v: 1, length: 1.0 },
            RoadEdge { u: 1, v: 3, length: 1.0 },
            RoadEdge { u: 0, v: 2, length: 5.0 },
            RoadEdge { u: 2, v: 3, length: 5.0 },
            RoadEdge { u: 0, v: 3, length: 2.5 },
        ];
        RoadNetwork::new(positions, edges)
    }

    #[test]
    fn picks_cheapest_path() {
        let g = diamond();
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.dist, 2.0);
        assert_eq!(p.nodes, vec![0, 1, 3]);
        assert_eq!(p.edges.len(), 2);
    }

    #[test]
    fn source_equals_target() {
        let g = diamond();
        let p = shortest_path(&g, 2, 2).unwrap();
        assert_eq!(p.dist, 0.0);
        assert_eq!(p.nodes, vec![2]);
        assert!(p.edges.is_empty());
    }

    #[test]
    fn unreachable_is_none() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let g = RoadNetwork::new(positions, vec![RoadEdge { u: 0, v: 1, length: 1.0 }]);
        assert!(shortest_path(&g, 0, 2).is_none());
        let d = dijkstra_all(&g, 0);
        assert_eq!(d[2], f64::INFINITY);
    }

    #[test]
    fn all_distances_match_point_queries() {
        let g = diamond();
        let d = dijkstra_all(&g, 0);
        for t in 1..4u32 {
            let p = shortest_path(&g, 0, t).unwrap();
            assert!((p.dist - d[t as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_bellman_ford_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 40usize;
        let mut edges = Vec::new();
        // Spanning chain keeps it connected.
        for i in 0..n as u32 - 1 {
            edges.push(RoadEdge { u: i, v: i + 1, length: rng.gen_range(1.0..10.0) });
        }
        for _ in 0..60 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push(RoadEdge { u, v, length: rng.gen_range(1.0..10.0) });
            }
        }
        let positions = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let g = RoadNetwork::new(positions, edges.clone());

        // Bellman–Ford reference.
        let mut bf = vec![f64::INFINITY; n];
        bf[0] = 0.0;
        for _ in 0..n {
            for e in &edges {
                if bf[e.u as usize] + e.length < bf[e.v as usize] {
                    bf[e.v as usize] = bf[e.u as usize] + e.length;
                }
                if bf[e.v as usize] + e.length < bf[e.u as usize] {
                    bf[e.u as usize] = bf[e.v as usize] + e.length;
                }
            }
        }
        let d = dijkstra_all(&g, 0);
        for i in 0..n {
            assert!((d[i] - bf[i]).abs() < 1e-9, "node {i}: {} vs {}", d[i], bf[i]);
        }
    }

    #[test]
    fn bounded_settles_exactly_the_nodes_within_cutoff() {
        let g = diamond();
        let all = dijkstra_all(&g, 0);
        for cutoff in [0.0, 1.0, 2.0, 2.5, 100.0] {
            let settled = dijkstra_bounded(&g, 0, cutoff);
            let expect: Vec<u32> = (0..4u32).filter(|&v| all[v as usize] <= cutoff).collect();
            let mut got: Vec<u32> = settled.iter().map(|&(v, _)| v).collect();
            got.sort_unstable();
            assert_eq!(got, expect, "cutoff {cutoff}");
            for &(v, d) in &settled {
                assert!((d - all[v as usize]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bounded_is_sorted_by_distance() {
        let g = diamond();
        let settled = dijkstra_bounded(&g, 0, 10.0);
        for w in settled.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn tree_reconstruction_matches_point_queries() {
        let g = diamond();
        let (dist, parent) = dijkstra_tree(&g, 0);
        for t in 0..4u32 {
            let p = shortest_path(&g, 0, t).unwrap();
            assert!((p.dist - dist[t as usize]).abs() < 1e-12);
            let (nodes, edges) = reconstruct_path(0, t, &parent).unwrap();
            assert_eq!(nodes, p.nodes);
            assert_eq!(edges, p.edges);
        }
    }

    #[test]
    fn tree_unreachable_reconstruction_is_none() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let g = RoadNetwork::new(positions, vec![]);
        let (_, parent) = dijkstra_tree(&g, 0);
        assert!(reconstruct_path(0, 1, &parent).is_none());
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 30usize;
        let mut edges = Vec::new();
        for i in 0..n as u32 - 1 {
            edges.push(RoadEdge { u: i, v: i + 1, length: rng.gen_range(1.0..10.0) });
        }
        for _ in 0..40 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push(RoadEdge { u, v, length: rng.gen_range(1.0..10.0) });
            }
        }
        let positions = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let g = RoadNetwork::new(positions, edges);
        let mut scratch = PathScratch::new();
        for _ in 0..50 {
            let s = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            assert_eq!(scratch.shortest_path(&g, s, t), shortest_path(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn scratch_resets_after_unreachable_query() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let g = RoadNetwork::new(positions, vec![RoadEdge { u: 0, v: 1, length: 1.0 }]);
        let mut scratch = PathScratch::new();
        assert!(scratch.shortest_path(&g, 0, 2).is_none());
        // A later reachable query must not see stale state.
        let p = scratch.shortest_path(&g, 0, 1).unwrap();
        assert_eq!(p.dist, 1.0);
        assert!(scratch.shortest_path(&g, 2, 0).is_none());
    }

    #[test]
    fn batch_matches_per_pair_under_any_thread_count() {
        let g = diamond();
        let pairs =
            vec![(0u32, 3u32), (3, 0), (1, 2), (2, 2), (0, 1), (0, 3), (2, 1), (3, 1), (1, 0)];
        let reference: Vec<Option<PathResult>> =
            pairs.iter().map(|&(s, t)| shortest_path(&g, s, t)).collect();
        for threads in [0, 1, 2, 5, 16] {
            assert_eq!(shortest_paths_batch(&g, &pairs, threads), reference, "threads={threads}");
        }
        assert!(shortest_paths_batch(&g, &[], 4).is_empty());
    }

    #[test]
    fn batch_reports_unreachable_pairs() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let g = RoadNetwork::new(positions, vec![RoadEdge { u: 0, v: 1, length: 1.0 }]);
        let out = shortest_paths_batch(&g, &[(0, 2), (0, 1), (2, 0)], 2);
        assert!(out[0].is_none());
        assert_eq!(out[1].as_ref().unwrap().dist, 1.0);
        assert!(out[2].is_none());
    }

    #[test]
    fn path_edges_connect_nodes() {
        let g = diamond();
        let p = shortest_path(&g, 2, 1).unwrap();
        for (i, &e) in p.edges.iter().enumerate() {
            let edge = g.edge(e);
            let (a, b) = (p.nodes[i], p.nodes[i + 1]);
            assert!(
                (edge.u == a && edge.v == b) || (edge.u == b && edge.v == a),
                "edge {e} does not connect {a}-{b}"
            );
        }
    }
}
