//! Extension experiment (paper §5.1 / Lemma 2): accuracy of the
//! Lanczos + Hutchinson estimator as a function of probe count `s` and
//! Lanczos steps `t`, against the exact natural connectivity.
//!
//! The paper claims ~1% error at the defaults `s = 50, t = 10` because
//! `t = O(‖A‖₂ + log 1/ε)` and transit spectral norms are tiny. This
//! experiment measures both knobs and reports the spectral norms.

use ct_core::CtBusParams;
use ct_linalg::{natural_connectivity_exact, spectral_norm, ConnectivityEstimator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{ExperimentCtx, OutputSink};

/// Runs this experiment and writes its artifacts.
pub fn run(ctx: &mut ExperimentCtx) {
    let mut sink = OutputSink::new("ext_slq");
    sink.line("# Extension — SLQ estimator accuracy vs (s, t) (paper §5.1, Lemma 2)");
    sink.blank();

    let s_grid: Vec<usize> = if ctx.fast { vec![10, 50] } else { vec![10, 25, 50, 100] };
    let t_grid: Vec<usize> = if ctx.fast { vec![4, 10] } else { vec![2, 4, 6, 10, 15] };

    let mut json = serde_json::Map::new();
    for name in ctx.main_city_names() {
        ctx.prepare(name);
        let bundle = ctx.bundle(name);
        let adj = &bundle.pre.base_adj;
        let exact = natural_connectivity_exact(adj).expect("exact connectivity");
        let mut rng = StdRng::seed_from_u64(0x51A9);
        let norm = spectral_norm(adj, &mut rng).expect("spectral norm");
        sink.line(format!(
            "## {name} — exact λ = {exact:.4}, ‖A‖₂ = {norm:.2} (paper: 5.46 Chi / 4.79 NYC)"
        ));

        let mut rows = Vec::new();
        let mut cells = Vec::new();
        for &t in &t_grid {
            let mut row = vec![format!("t={t}")];
            for &s in &s_grid {
                let params = CtBusParams {
                    trace_probes: s,
                    lanczos_steps: t,
                    ..CtBusParams::paper_defaults()
                };
                let est = ConnectivityEstimator::new(adj.n(), &params.trace_params(), 0xEE);
                let got = est.lambda(adj).expect("estimate");
                let rel = (got - exact).abs() / exact.abs().max(1e-12);
                row.push(format!("{:.2}%", rel * 100.0));
                cells.push(serde_json::json!({ "s": s, "t": t, "rel_err": rel }));
            }
            rows.push(row);
        }
        let mut header: Vec<String> = vec!["".into()];
        header.extend(s_grid.iter().map(|s| format!("s={s}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        sink.table(&header_refs, &rows);
        sink.blank();
        json.insert(
            name.to_string(),
            serde_json::json!({
                "exact_lambda": exact,
                "spectral_norm": norm,
                "grid": cells,
            }),
        );
    }
    sink.line(
        "Shape check (paper): error is dominated by the probe count once \
         t ≳ ‖A‖₂ (Lemma 2); at the defaults (s=50, t=10) the estimate sits \
         near the claimed ~1% (relative error shrinks as n grows — compare \
         Table 2's full-scale 0.3–0.4%).",
    );
    sink.write_json(&serde_json::Value::Object(json));
    sink.finish();
}
