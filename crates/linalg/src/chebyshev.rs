//! Chebyshev polynomial approximation of `e^A v`.
//!
//! The Lanczos method (§5.1, [`crate::lanczos`]) is the paper's engine for
//! `e^A v`; Chebyshev expansion is the classic alternative in the
//! trace-estimation literature (e.g. Ubaru–Saad, the paper's refs
//! [54, 55]): expand `e^x` on `[−ρ, ρ]` (with `ρ ≥ ‖A‖₂`) in Chebyshev
//! polynomials,
//!
//! ```text
//! e^x ≈ I₀(ρ)·T₀(x/ρ) + 2·Σ_{k≥1} I_k(ρ)·T_k(x/ρ)
//! ```
//!
//! where `I_k` is the modified Bessel function of the first kind, then
//! evaluate with the three-term recurrence — one matvec per degree, no
//! inner products and no reorthogonalization. The trade-off this module
//! exists to measure (see the `expm` bench): Chebyshev's degree must grow
//! with `ρ` while Lanczos adapts to the spectrum, but each Chebyshev step
//! is cheaper and embarrassingly stable.

use crate::error::LinalgError;
use crate::sparse::CsrMatrix;

/// Modified Bessel functions of the first kind `I_0(x) … I_order(x)` via
/// Miller's downward recurrence (stable for all the orders used here).
///
/// # Panics
/// Panics if `x` is negative or not finite.
pub fn bessel_i(order: usize, x: f64) -> Vec<f64> {
    assert!(x.is_finite() && x >= 0.0, "bessel_i requires finite x ≥ 0, got {x}");
    if x == 0.0 {
        let mut out = vec![0.0; order + 1];
        out[0] = 1.0;
        return out;
    }
    // Start the downward recurrence well above the requested order; terms
    // beyond it are negligible after normalization.
    let start = order + 2 + (x.ceil() as usize) + 16;
    let mut high = 0.0_f64; // I_{k+2}, unnormalized
    let mut cur = 1e-280_f64; // I_{k+1} seed; normalized away below
    let mut norm = 0.0_f64; // accumulates I₀ + 2 Σ_{k≥1} I_k, same scale
    let mut out = vec![0.0; order + 1];
    for k in (0..start).rev() {
        let low = high + 2.0 * (k as f64 + 1.0) / x * cur; // I_k
        high = cur;
        cur = low;
        norm += if k == 0 { low } else { 2.0 * low };
        if k <= order {
            out[k] = low;
        }
        // Rescale everything in lockstep to dodge overflow.
        if cur > 1e250 {
            let s = 1e-250;
            cur *= s;
            high *= s;
            norm *= s;
            for v in &mut out {
                *v *= s;
            }
        }
    }
    // e^x = I₀(x) + 2 Σ_{k≥1} I_k(x) fixes the overall scale.
    let factor = x.exp() / norm;
    for v in &mut out {
        *v *= factor;
    }
    out
}

/// Approximates `e^A v` with a degree-`degree` Chebyshev expansion.
///
/// `spectral_bound` must satisfy `spectral_bound ≥ ‖A‖₂` (estimate it with
/// [`crate::spectral_norm`]); a loose bound costs accuracy at fixed degree
/// but never diverges. Convergence is superexponential once
/// `degree ≳ spectral_bound`.
///
/// ```
/// use ct_linalg::{chebyshev_expv, CsrMatrix};
/// // Single edge: e^A e₀ = (cosh 1, sinh 1) on the edge's two nodes.
/// let a = CsrMatrix::from_undirected_edges(2, &[(0, 1)]);
/// let col = chebyshev_expv(&a, &[1.0, 0.0], 20, 1.0).unwrap();
/// assert!((col[0] - 1.0f64.cosh()).abs() < 1e-12);
/// assert!((col[1] - 1.0f64.sinh()).abs() < 1e-12);
/// ```
pub fn chebyshev_expv(
    a: &CsrMatrix,
    v: &[f64],
    degree: usize,
    spectral_bound: f64,
) -> Result<Vec<f64>, LinalgError> {
    let n = a.n();
    if n == 0 || v.is_empty() {
        return Err(LinalgError::EmptyInput("matrix or vector"));
    }
    if v.len() != n {
        return Err(LinalgError::DimensionMismatch { expected: n, actual: v.len() });
    }
    if !(spectral_bound.is_finite() && spectral_bound > 0.0) {
        return Err(LinalgError::EmptyInput("spectral bound must be positive and finite"));
    }
    let rho = spectral_bound;
    let coef = bessel_i(degree, rho);

    // Three-term recurrence on à = A/ρ:  w_{k+1} = 2·Ã·w_k − w_{k−1}.
    let mut w_prev: Vec<f64> = v.to_vec(); // T₀(Ã)v = v
    let mut out: Vec<f64> = v.iter().map(|&x| coef[0] * x).collect();
    if degree == 0 {
        return Ok(out);
    }
    let mut w_cur = a.matvec_alloc(v); // T₁(Ã)v = Ã v
    for x in &mut w_cur {
        *x /= rho;
    }
    for (o, &w) in out.iter_mut().zip(&w_cur) {
        *o += 2.0 * coef[1] * w;
    }
    let mut scratch = vec![0.0; n];
    for k in 2..=degree {
        // w_next = 2 Ã w_cur − w_prev, built in `scratch`.
        a.matvec(&w_cur, &mut scratch);
        for i in 0..n {
            scratch[i] = 2.0 * scratch[i] / rho - w_prev[i];
        }
        std::mem::swap(&mut w_prev, &mut w_cur);
        std::mem::swap(&mut w_cur, &mut scratch);
        let c = 2.0 * coef[k];
        for (o, &w) in out.iter_mut().zip(&w_cur) {
            *o += c * w;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::full_symmetric_eigenvalues;
    use crate::lanczos::lanczos_expv;

    /// Path graph P_n as CSR adjacency.
    fn path_graph(n: usize) -> CsrMatrix {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CsrMatrix::from_undirected_edges(n, &edges)
    }

    #[test]
    fn bessel_matches_reference_values() {
        // Abramowitz & Stegun 9.8 reference values.
        let i1 = bessel_i(2, 1.0);
        assert!((i1[0] - 1.266_065_877_8).abs() < 1e-9, "I0(1) = {}", i1[0]);
        assert!((i1[1] - 0.565_159_103_99).abs() < 1e-9, "I1(1) = {}", i1[1]);
        assert!((i1[2] - 0.135_747_669_8).abs() < 1e-9, "I2(1) = {}", i1[2]);
        let i2 = bessel_i(1, 2.0);
        assert!((i2[0] - 2.279_585_302_3).abs() < 1e-8, "I0(2) = {}", i2[0]);
        assert!((i2[1] - 1.590_636_854_6).abs() < 1e-8, "I1(2) = {}", i2[1]);
    }

    #[test]
    fn bessel_sum_identity() {
        // e^x = I₀ + 2 Σ I_k; with enough orders the tail is negligible.
        for &x in &[0.5, 2.0, 5.0] {
            let i = bessel_i(30, x);
            let sum = i[0] + 2.0 * i[1..].iter().sum::<f64>();
            assert!((sum - x.exp()).abs() < 1e-9 * x.exp(), "x = {x}: {sum}");
        }
    }

    #[test]
    fn bessel_at_zero() {
        let i = bessel_i(3, 0.0);
        assert_eq!(i, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn expv_matches_exact_on_a_path() {
        // P_3 with A = [[0,1,0],[1,0,1],[0,1,0]]: e^A computable from its
        // eigenvalues ±√2, 0 — check against chebyshev on basis vectors.
        let a = path_graph(3);
        let eigs = full_symmetric_eigenvalues(a.to_dense()).unwrap();
        let tr_exact: f64 = eigs.iter().map(|l| l.exp()).sum();
        let mut tr_cheb = 0.0;
        for s in 0..3 {
            let mut e = vec![0.0; 3];
            e[s] = 1.0;
            let col = chebyshev_expv(&a, &e, 24, 1.5).unwrap();
            tr_cheb += col[s];
        }
        assert!((tr_cheb - tr_exact).abs() < 1e-10, "{tr_cheb} vs {tr_exact}");
    }

    #[test]
    fn expv_agrees_with_lanczos_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 40;
        let mut edges = Vec::new();
        for i in 0..n as u32 - 1 {
            edges.push((i, i + 1));
        }
        for _ in 0..50 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let a = CsrMatrix::from_undirected_edges(n, &edges);
        let v: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 / 11.0 - 0.5).collect();
        let rho = {
            let eigs = full_symmetric_eigenvalues(a.to_dense()).unwrap();
            eigs.iter().fold(0.0f64, |m, &l| m.max(l.abs()))
        };
        let cheb = chebyshev_expv(&a, &v, (3.0 * rho) as usize + 20, rho * 1.01).unwrap();
        let lan = lanczos_expv(&a, &v, 30).unwrap();
        let diff: f64 = cheb.iter().zip(&lan).map(|(c, l)| (c - l) * (c - l)).sum::<f64>().sqrt();
        let norm: f64 = lan.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(diff < 1e-8 * norm, "chebyshev vs lanczos: rel {}", diff / norm);
    }

    #[test]
    fn accuracy_improves_with_degree() {
        let a = path_graph(20);
        let v = vec![1.0; 20];
        let reference = lanczos_expv(&a, &v, 20).unwrap();
        let err = |deg: usize| -> f64 {
            let c = chebyshev_expv(&a, &v, deg, 2.0).unwrap();
            c.iter().zip(&reference).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
        };
        let (e4, e8, e16) = (err(4), err(8), err(16));
        assert!(e8 < e4, "degree 8 ({e8}) not better than 4 ({e4})");
        assert!(e16 < e8, "degree 16 ({e16}) not better than 8 ({e8})");
        assert!(e16 < 1e-10);
    }

    #[test]
    fn loose_spectral_bound_still_converges() {
        let a = path_graph(10);
        let v = vec![1.0; 10];
        let reference = lanczos_expv(&a, &v, 10).unwrap();
        // ‖A‖₂ < 2 but we hand it 8: more degree needed, same answer.
        let c = chebyshev_expv(&a, &v, 60, 8.0).unwrap();
        let err = c.iter().zip(&reference).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn degree_zero_scales_by_i0() {
        let a = path_graph(4);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let c = chebyshev_expv(&a, &v, 0, 2.0).unwrap();
        let i0 = bessel_i(0, 2.0)[0];
        for (ci, vi) in c.iter().zip(&v) {
            assert!((ci - i0 * vi).abs() < 1e-12);
        }
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = path_graph(4);
        assert!(matches!(
            chebyshev_expv(&a, &[1.0; 3], 8, 2.0),
            Err(LinalgError::DimensionMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn bad_spectral_bound_is_an_error() {
        let a = path_graph(4);
        assert!(chebyshev_expv(&a, &[1.0; 4], 8, 0.0).is_err());
        assert!(chebyshev_expv(&a, &[1.0; 4], 8, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "bessel_i requires finite x")]
    fn negative_bessel_argument_panics() {
        bessel_i(3, -1.0);
    }
}
