//! Case runner for the [`proptest!`](crate::proptest) macro.

use crate::strategy::{Strategy, TestRng};
use rand::SeedableRng;

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with a rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Per-property configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many successful cases each property must see.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

fn case_count(config: &ProptestConfig) -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases as usize)
}

/// Runs `f` over deterministic cases (count from `config`, overridable via
/// the `PROPTEST_CASES` environment variable), panicking on the first
/// failure with enough information to replay it.
///
/// No shrinking: `f` draws its own values from the RNG, so the runner has
/// nothing to minimize. The [`proptest!`](crate::proptest) macro goes
/// through [`run_cases_shrink`] instead.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let want = case_count(&config);
    let base = fnv1a(name);
    let mut ran = 0usize;
    let mut rejected = 0usize;
    let max_rejects = want.saturating_mul(20).max(1000);
    let mut attempt = 0u64;
    while ran < want {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected}) before completing {want} cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed (case {n} of {want}, seed {seed:#x}):\n{msg}",
                    n = ran + 1
                );
            }
        }
    }
}

/// Evaluation budget for one shrink session: candidates *tried*, not
/// accepted. Bounds runaway shrinking on expensive properties.
const MAX_SHRINK_EVALS: usize = 1024;

/// Like [`run_cases`], but the runner draws values from `strategy` itself
/// and, when a case fails, greedily minimizes it with
/// [`Strategy::shrink`] before panicking: take the first candidate that
/// still fails, restart from it, stop when no candidate fails (or the
/// evaluation budget runs out). The panic reports the seed of the
/// original failure *and* the minimal counterexample.
///
/// Panics inside `f` count as failures (so a genuine `panic!`/index-out-
/// of-bounds in the property body shrinks too, not just `prop_assert!`);
/// `Reject` during shrinking just discards the candidate.
pub fn run_cases_shrink<S, F>(config: ProptestConfig, name: &str, strategy: &S, mut f: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut run = |value: S::Value| -> Result<(), TestCaseError> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "property body panicked".into());
                Err(TestCaseError::Fail(format!("panic: {msg}")))
            }
        }
    };

    let want = case_count(&config);
    let base = fnv1a(name);
    let mut ran = 0usize;
    let mut rejected = 0usize;
    let max_rejects = want.saturating_mul(20).max(1000);
    let mut attempt = 0u64;
    while ran < want {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        match run(value.clone()) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected}) before completing {want} cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, final_msg, steps) = minimize(strategy, value, msg, &mut run);
                panic!(
                    "proptest `{name}` failed (case {n} of {want}, seed {seed:#x}):\n\
                     {final_msg}\nminimal counterexample ({steps} shrink step(s)): {minimal:?}",
                    n = ran + 1
                );
            }
        }
    }
}

/// The greedy shrink loop: returns the smallest still-failing value, its
/// failure message, and how many accepted shrink steps led there.
fn minimize<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    run: &mut F,
) -> (S::Value, String, usize)
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0usize;
    let mut evals = 0usize;
    'outer: while evals < MAX_SHRINK_EVALS {
        for candidate in strategy.shrink(&value) {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if let Err(TestCaseError::Fail(candidate_msg)) = run(candidate.clone()) {
                value = candidate;
                msg = candidate_msg;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: `value` is locally minimal
    }
    (value, msg, steps)
}
