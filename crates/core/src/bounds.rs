//! Connectivity upper bounds (paper §5.2) in overflow-safe log space.
//!
//! All four bounds cap the natural connectivity `λ(G'r)` of the network
//! after adding `k` edges:
//!
//! * [`estrada_bound`] — De La Peña et al. \[25\], depends only on `|Er| + k`
//!   and `n`; hugely loose (Table 3) but requires no spectrum;
//! * [`general_bound`] — Lemma 3, for `k` *arbitrary* edges, needs the top
//!   `2k` eigenvalues;
//! * [`path_bound`] — Lemma 4, for a `k`-edge *simple path*, needs the top
//!   `⌊(k+1)/2⌋` eigenvalues and the closed-form path-graph spectrum
//!   `σ_i = 2cos(iπ/(k+2))`;
//! * [`increment_bound`] — §6, the sum of the `k` largest pre-computed
//!   per-edge increments `Δ(e)`; the tightest (last column of Table 3).

use ct_linalg::util::{logaddexp, logsubexp, logsumexp};

use crate::ranked::RankedList;

/// Estrada-index bound \[25\]: `λ(G') ≤ ln(1 + (e^{√(2(|Er|+k))} − 1)/n)`.
///
/// The naive evaluation overflows for city-scale `|Er|` (the exponent is
/// ≈117 for Chicago); rewriting as `ln((n − 1 + e^x)/n)` in log space keeps
/// it finite.
pub fn estrada_bound(num_edges: usize, k: usize, n: usize) -> f64 {
    assert!(n > 0, "graph must have vertices");
    let x = (2.0 * (num_edges + k) as f64).sqrt();
    let log_n_minus_1 = if n > 1 { ((n - 1) as f64).ln() } else { f64::NEG_INFINITY };
    logsumexp(&[log_n_minus_1, x]) - (n as f64).ln()
}

/// Lemma 3: bound on `λ(G')` after adding `k` arbitrary edges.
///
/// `base_lambda` is `λ(Gr)`; `top_eigs` are the algebraically largest
/// eigenvalues of `Gr`'s adjacency, descending — the first `2k` are used
/// (fewer are tolerated; the bound only loosens).
pub fn general_bound(base_lambda: f64, top_eigs: &[f64], k: usize, n: usize) -> f64 {
    assert!(n > 0, "graph must have vertices");
    if k == 0 {
        return base_lambda;
    }
    let ln_n = (n as f64).ln();
    let take = (2 * k).min(top_eigs.len());
    // A = (1/n) Σ_{i≤2k} e^{λ_i}
    let log_a = logsumexp(&top_eigs[..take]) - ln_n;
    // B = (e^{λ₁}/n) (e^{√(2k)} + 2k − 1)
    let lambda1 = top_eigs.first().copied().unwrap_or(0.0);
    let root = (2.0 * k as f64).sqrt();
    let log_poly = logsumexp(&[root, ((2 * k - 1) as f64).ln()]);
    let log_b = lambda1 - ln_n + log_poly;
    // bound = ln(e^λ + B − A); B ≥ A holds by construction (see module docs).
    let total = logsubexp(logaddexp(base_lambda, log_b), log_a);
    if total.is_nan() {
        // Fall back to dropping the (negative) −A term; still a valid bound.
        logaddexp(base_lambda, log_b)
    } else {
        total
    }
}

/// Eigenvalues of the `k`-edge simple path graph `P_{k+1}`:
/// `2cos(iπ/(k+2))` for `i = 1..=k+1`, descending.
pub fn path_graph_eigenvalues(k: usize) -> Vec<f64> {
    (1..=k + 1).map(|i| 2.0 * (i as f64 * std::f64::consts::PI / (k as f64 + 2.0)).cos()).collect()
}

/// Lemma 4: bound on `λ(G')` after adding a `k`-edge simple path.
///
/// Tighter than [`general_bound`] because the perturbation's spectrum is
/// known in closed form and only its `⌊(k+1)/2⌋` positive eigenvalues can
/// push eigenvalues of `G'` upward.
pub fn path_bound(base_lambda: f64, top_eigs: &[f64], k: usize, n: usize) -> f64 {
    assert!(n > 0, "graph must have vertices");
    if k == 0 {
        return base_lambda;
    }
    let ln_n = (n as f64).ln();
    let m = k.div_ceil(2);
    let sigma = path_graph_eigenvalues(k);
    let mut terms = Vec::with_capacity(m + 1);
    terms.push(base_lambda);
    for i in 0..m.min(top_eigs.len()) {
        let s = sigma[i];
        debug_assert!(s > 0.0, "only positive path eigenvalues contribute");
        // (e^{σ_i} − 1) e^{λ_i} / n, in log space.
        terms.push(s.exp_m1().ln() + top_eigs[i] - ln_n);
    }
    logsumexp(&terms)
}

/// §6 increment bound: `O↑λ = Σ_{i=1}^{k} L_λ(i)`, the sum of the `k`
/// largest pre-computed per-edge connectivity increments. Returned as an
/// *increment* (add `λ(Gr)` for a bound on `λ(G'r)`).
pub fn increment_bound(llambda: &RankedList, k: usize) -> f64 {
    llambda.top_k_sum(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_linalg::{natural_connectivity_exact, sparse_symmetric_eigenvalues, CsrMatrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, m: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push((u, v));
            }
        }
        CsrMatrix::from_undirected_edges(n, &edges)
    }

    fn top_eigs_desc(a: &CsrMatrix) -> Vec<f64> {
        let mut e = sparse_symmetric_eigenvalues(a).unwrap();
        e.reverse();
        e
    }

    fn absent_edges(a: &CsrMatrix, want: usize, seed: u64) -> Vec<(u32, u32)> {
        let n = a.n() as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut guard = 0;
        while out.len() < want && guard < 10_000 {
            guard += 1;
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !a.has_edge(u, v) && !out.contains(&(u.min(v), u.max(v))) {
                out.push((u.min(v), u.max(v)));
            }
        }
        out
    }

    #[test]
    fn estrada_bound_is_finite_at_city_scale() {
        // Chicago-scale: |Er| = 6892, k = 15, n = 6171 ⇒ √(2·6907) ≈ 117.5
        // and the bound is √(2(|Er|+k)) − ln n ≈ 108.8. (The paper's Table 3
        // prints 104.2; evaluating their stated formula with their Table 5
        // sizes gives 108.8 — same order, same conclusion: hopelessly loose.)
        let b = estrada_bound(6892, 15, 6171);
        assert!(b.is_finite());
        let expect = (2.0f64 * 6907.0).sqrt() - 6171f64.ln();
        assert!((b - expect).abs() < 1e-6, "got {b}, expect {expect}");
    }

    #[test]
    fn estrada_bound_matches_naive_formula_at_small_scale() {
        // Where the naive evaluation does not overflow, both must agree.
        let (m, k, n) = (40usize, 5usize, 30usize);
        let x = (2.0 * (m + k) as f64).sqrt();
        let naive = (1.0 + (x.exp() - 1.0) / n as f64).ln();
        let b = estrada_bound(m, k, n);
        assert!((b - naive).abs() < 1e-10, "{b} vs {naive}");
    }

    #[test]
    fn estrada_dominates_exact_connectivity() {
        let a = random_graph(30, 60, 1);
        let exact = natural_connectivity_exact(&a).unwrap();
        let b = estrada_bound(a.num_undirected_edges(), 0, a.n());
        assert!(b >= exact, "estrada {b} < exact {exact}");
    }

    #[test]
    fn general_bound_dominates_any_k_edge_addition() {
        let a = random_graph(40, 70, 2);
        let base = natural_connectivity_exact(&a).unwrap();
        let eigs = top_eigs_desc(&a);
        for k in [1usize, 3, 6] {
            let adds = absent_edges(&a, k, 7 + k as u64);
            let a_new = a.with_added_unit_edges(&adds);
            let exact_new = natural_connectivity_exact(&a_new).unwrap();
            let bound = general_bound(base, &eigs, k, a.n());
            assert!(bound >= exact_new - 1e-9, "k={k}: bound {bound} < exact {exact_new}");
        }
    }

    #[test]
    fn path_bound_dominates_path_additions() {
        let a = random_graph(40, 70, 3);
        let base = natural_connectivity_exact(&a).unwrap();
        let eigs = top_eigs_desc(&a);
        // Add a simple path over fresh vertex sequences.
        for k in [2usize, 4, 7] {
            let mut rng = StdRng::seed_from_u64(50 + k as u64);
            // Random simple path: k+1 distinct vertices.
            let mut verts: Vec<u32> = (0..a.n() as u32).collect();
            for i in (1..verts.len()).rev() {
                let j = rng.gen_range(0..=i);
                verts.swap(i, j);
            }
            let path: Vec<(u32, u32)> =
                verts[..k + 1].windows(2).map(|w| (w[0].min(w[1]), w[0].max(w[1]))).collect();
            let a_new = a.with_added_unit_edges(&path);
            let exact_new = natural_connectivity_exact(&a_new).unwrap();
            let bound = path_bound(base, &eigs, k, a.n());
            assert!(bound >= exact_new - 1e-9, "k={k}: path bound {bound} < exact {exact_new}");
        }
    }

    #[test]
    fn path_bound_tighter_than_general() {
        let a = random_graph(50, 90, 4);
        let base = natural_connectivity_exact(&a).unwrap();
        let eigs = top_eigs_desc(&a);
        for k in [5usize, 10, 15] {
            let g = general_bound(base, &eigs, k, a.n());
            let p = path_bound(base, &eigs, k, a.n());
            assert!(p <= g, "k={k}: path {p} > general {g}");
        }
    }

    #[test]
    fn general_tighter_than_estrada() {
        let a = random_graph(50, 90, 5);
        let base = natural_connectivity_exact(&a).unwrap();
        let eigs = top_eigs_desc(&a);
        let k = 10;
        let e = estrada_bound(a.num_undirected_edges(), k, a.n());
        let g = general_bound(base, &eigs, k, a.n());
        assert!(g <= e, "general {g} > estrada {e}");
    }

    #[test]
    fn k_zero_is_identity() {
        let a = random_graph(20, 40, 6);
        let base = natural_connectivity_exact(&a).unwrap();
        let eigs = top_eigs_desc(&a);
        assert_eq!(general_bound(base, &eigs, 0, a.n()), base);
        assert_eq!(path_bound(base, &eigs, 0, a.n()), base);
    }

    #[test]
    fn path_graph_spectrum_matches_known_values() {
        // P2 (k=1): eigenvalues ±1... 2cos(iπ/3): i=1 → 1, i=2 → −1.
        let e = path_graph_eigenvalues(1);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] + 1.0).abs() < 1e-12);
        // P3 (k=2): √2, 0, −√2.
        let e = path_graph_eigenvalues(2);
        assert!((e[0] - 2f64.sqrt()).abs() < 1e-12);
        assert!(e[1].abs() < 1e-12);
    }

    #[test]
    fn increment_bound_sums_top_k() {
        let l = RankedList::new(&[0.1, 0.5, 0.3, 0.2]);
        assert!((increment_bound(&l, 2) - 0.8).abs() < 1e-12);
        assert!((increment_bound(&l, 10) - 1.1).abs() < 1e-12);
    }
}
