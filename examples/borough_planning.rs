//! Borough planning: reproduce a Table 6-style comparison on a Bronx-like
//! borough — CT-Bus (ETA-Pre) against the demand-first vk-TSP baseline.
//!
//! The paper's headline: in the Bronx, connectivity-aware planning avoids
//! ~4.7 transfers per commuter where demand-first planning avoids ~1.6.
//!
//! ```sh
//! cargo run --release --example borough_planning
//! ```

use ct_bus::core::{evaluate_plan, CtBusParams, Planner, PlannerMode};
use ct_bus::data::{CityConfig, DemandModel};

fn main() {
    let city = CityConfig::bronx_like().generate();
    let demand = DemandModel::from_city(&city);
    let stats = city.stats();
    println!(
        "{}: {} routes / {} stops / {} trajectories",
        city.name, stats.routes, stats.stops, stats.trajectories
    );

    let params = CtBusParams { k: 16, sn: 1500, it_max: 20_000, ..CtBusParams::small_defaults() };
    let planner = Planner::new(&city, &demand, params);

    println!(
        "\n{:<10} {:>6} {:>9} {:>12} {:>10} {:>8} {:>8}",
        "method", "edges", "obj O(μ)", "conn Oλ(μ)", "#transfer", "ζ(μ)", "#crossed"
    );
    for (label, mode) in [("ETA-Pre", PlannerMode::EtaPre), ("vk-TSP", PlannerMode::VkTsp)] {
        let res = planner.run(mode);
        let m = evaluate_plan(&city, &res.best, &planner.precomputed().candidates);
        println!(
            "{:<10} {:>6} {:>9.4} {:>12.5} {:>10.2} {:>8.2} {:>8}",
            label,
            res.best.num_edges(),
            res.best.objective,
            res.best.conn_increment,
            m.transfers_avoided,
            m.distance_ratio,
            m.crossed_routes
        );
    }
    println!(
        "\nExpected shape (paper Table 6): the connectivity-aware route avoids \
         more transfers and crosses more existing routes than the demand-first one."
    );
}
