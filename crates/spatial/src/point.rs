//! Planar and geographic points.

use serde::{Deserialize, Serialize};

use crate::distance::EARTH_RADIUS_M;

/// A point in a local planar projection, in **meters**.
///
/// All CT-Bus geometry (stop spacing, turn angles, grid indexing) operates on
/// these projected coordinates. Use [`Projection`] to obtain them from
/// geographic [`GeoPoint`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn dist(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance; avoids the square root in hot loops.
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector from `self` to `other`.
    pub fn delta(&self, other: &Point) -> (f64, f64) {
        (other.x - self.x, other.y - self.y)
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

/// A geographic point in WGS84 degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a geographic point from latitude/longitude degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }
}

/// Equirectangular projection anchored at a reference point.
///
/// Accurate to well under 0.1% over city scales (tens of km), which is all
/// the paper's geometry requires (τ = 0.5 km stop spacing, turn angles).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Projection {
    origin: GeoPoint,
    cos_lat: f64,
}

impl Projection {
    /// Builds a projection centred on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        Projection { origin, cos_lat: origin.lat.to_radians().cos() }
    }

    /// Projects a geographic point to local planar meters.
    pub fn project(&self, g: &GeoPoint) -> Point {
        let dlat = (g.lat - self.origin.lat).to_radians();
        let dlon = (g.lon - self.origin.lon).to_radians();
        Point::new(EARTH_RADIUS_M * dlon * self.cos_lat, EARTH_RADIUS_M * dlat)
    }

    /// Inverse projection from local planar meters back to degrees.
    pub fn unproject(&self, p: &Point) -> GeoPoint {
        let dlat = p.y / EARTH_RADIUS_M;
        let dlon = p.x / (EARTH_RADIUS_M * self.cos_lat);
        GeoPoint::new(self.origin.lat + dlat.to_degrees(), self.origin.lon + dlon.to_degrees())
    }

    /// The projection origin.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(-2.0, 7.5);
        let b = Point::new(10.0, -3.25);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.midpoint(&b), a.lerp(&b, 0.5));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn projection_roundtrip() {
        let proj = Projection::new(GeoPoint::new(41.85, -87.65)); // Chicago
        let g = GeoPoint::new(41.90, -87.70);
        let p = proj.project(&g);
        let back = proj.unproject(&p);
        assert!((back.lat - g.lat).abs() < 1e-9);
        assert!((back.lon - g.lon).abs() < 1e-9);
    }

    #[test]
    fn projection_distances_are_metric() {
        // One degree of latitude is ~111.2 km everywhere.
        let proj = Projection::new(GeoPoint::new(40.0, -74.0));
        let a = proj.project(&GeoPoint::new(40.0, -74.0));
        let b = proj.project(&GeoPoint::new(41.0, -74.0));
        let d = a.dist(&b);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn projection_origin_maps_to_zero() {
        let origin = GeoPoint::new(40.7, -73.9);
        let proj = Projection::new(origin);
        let p = proj.project(&origin);
        assert!(p.x.abs() < 1e-12 && p.y.abs() < 1e-12);
        assert_eq!(proj.origin(), origin);
    }
}
