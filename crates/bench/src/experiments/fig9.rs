//! Figure 9: convergence of the best objective over iterations for ETA,
//! ETA-Pre, and ETA-ALL (all-candidate seeding).

use ct_core::PlannerMode;

use crate::harness::{f, ExperimentCtx, OutputSink};

/// Runs this experiment and writes its artifacts.
pub fn run(ctx: &mut ExperimentCtx) {
    let mut sink = OutputSink::new("fig9");
    sink.line("# Fig. 9 — convergence of ETA / ETA-Pre / ETA-ALL");
    sink.blank();

    let pre_it = if ctx.fast { 5_000u64 } else { 20_000 };
    let eta_it = if ctx.fast { 200u64 } else { 800 };

    let mut json = serde_json::Map::new();
    for name in ctx.main_city_names() {
        ctx.prepare(name);
        sink.line(format!("## {name}"));
        let mut rows = Vec::new();
        let mut area = serde_json::Map::new();
        for (label, mode, cap) in [
            ("ETA", PlannerMode::Eta, eta_it),
            ("ETA-Pre", PlannerMode::EtaPre, pre_it),
            ("ETA-ALL", PlannerMode::EtaAll, pre_it),
        ] {
            let mut params = ctx.base_params();
            params.it_max = cap;
            params.sn = if ctx.fast { 800 } else { 2000 };
            if mode == PlannerMode::Eta {
                params.sn = params.sn.min(300);
            }
            let planner = ctx.planner(name, params);
            let res = planner.run(mode);
            let final_obj = res.trace.last().map(|&(_, o)| o).unwrap_or(0.0);
            // Iterations to reach 95% of the final objective.
            let conv_at = res
                .trace
                .iter()
                .find(|&&(_, o)| o >= 0.95 * final_obj)
                .map(|&(i, _)| i)
                .unwrap_or(0);
            rows.push(vec![
                label.to_string(),
                res.iterations.to_string(),
                f(final_obj, 4),
                conv_at.to_string(),
                format!("{:.2}", res.runtime_secs),
            ]);
            area.insert(
                label.to_string(),
                serde_json::json!({
                    "trace": res.trace, "runtime_secs": res.runtime_secs,
                }),
            );
        }
        sink.table(
            &["method", "iterations", "final objective", "95%-conv @ iter", "runtime (s)"],
            &rows,
        );
        sink.blank();
        json.insert(name.to_string(), serde_json::Value::Object(area));
    }
    sink.line(
        "Shape check (paper): ETA-Pre converges within a few hundred \
         iterations to an objective comparable to (or better than) online \
         ETA; seeding with *all* edges (ETA-ALL) converges more slowly.",
    );
    sink.write_json(&serde_json::Value::Object(json));
    sink.finish();
}
