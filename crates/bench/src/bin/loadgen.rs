//! Load generator for the concurrent planning service
//! ([`ct_core::ServeState`]): fire thousands of simultaneous what-if
//! requests across worker threads and measure what the serving layer
//! sustains.
//!
//! ```sh
//! cargo run -p ct_bench --release --bin loadgen -- \
//!     --requests 2000 --threads 4 --commit-every 50 --verify
//! ```
//!
//! **Workload.** One `ServeState` over the medium synthetic city (same
//! fixture and parameters as the `multi_route` benches). Workers pull
//! request indices from a shared counter; by index the mix is:
//!
//! * *plan* — check out the current snapshot, plan;
//! * *branch+plan* (every 2nd) — check out, fork a what-if branch, plan on
//!   the branch (exercises the O(1) `branch()` path);
//! * *commit* (every `--commit-every`th, 0 = read-only) — plan, then
//!   submit the plan as a [`ct_core::CommitTicket`] through the
//!   single-writer queue, re-planning on a fresh snapshot if the ticket
//!   went stale (bounded retries).
//!
//! **Reported** (and, with `--baseline`, merged into
//! `target/experiments/bench_baseline.json` in the same line format the
//! vendored criterion writes, so `bench_check` gates regressions):
//!
//! * `loadgen/seq_plan_ns/medium` — sequential back-to-back per-plan cost
//!   (the 1-thread baseline the speedup criterion divides by);
//! * `loadgen/concurrent_plan_ns/t{N}` — wall-clock per plan across the
//!   whole concurrent run (inverse throughput, so slower ⇒ larger and the
//!   `bench_check` ratio gate reads naturally);
//! * `loadgen/plan_p99_ns/t{N}` — p99 of individual request latencies;
//! * `loadgen/commit_apply_ns` — median apply-and-publish latency of
//!   applied commit tickets.
//!
//! **Verification** (`--verify`). Planning is deterministic per snapshot,
//! so the service has a sequential oracle: the i-th *applied* commit must
//! carry exactly the plan `plan_multiple_reference` produces in round i,
//! and every sampled read-only plan taken at generation g must equal the
//! oracle's round-g plan — regardless of thread interleaving. `--verify`
//! checks both, plus gapless commit generations and nonzero throughput.
//!
//! **Chaos mode** (`--chaos`, seed via `--chaos-seed`). Installs a
//! deterministic fault schedule on the serving path: a panic at each of
//! the four registered failpoints (commit-apply, session-refresh,
//! snapshot-publish, and snapshot-swap — the last one fires while the
//! snapshot write lock is held, poisoning it) plus a seeded batch of
//! extra panics/delays/errors ([`ct_core::FailPlan::seeded`]). Workers
//! treat `Failed`/`Overloaded` outcomes as retryable and re-plan; after
//! the run a recovery commit must apply, proving post-fault throughput
//! recovers. `--chaos --verify` additionally holds the oracle checks
//! under fire — failed commits publish nothing, so the applied sequence
//! still replays `plan_multiple_reference` bit for bit — and asserts the
//! final generation equals the applied-commit count (gapless even when
//! faults interleave).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ct_bench::baseline::merge_baseline;
use ct_core::{
    fault::{self, site},
    plan_multiple_reference, CommitOutcome, CommitTicket, CtBusParams, FailPlan, PlannerMode,
    RefreshPolicy, RoutePlan, ServeState,
};
use ct_data::{CityConfig, DemandModel};

/// Every Nth non-commit request records `(generation, plan)` for the
/// oracle check.
const SAMPLE_EVERY: usize = 8;
/// Re-plan attempts before a commit request gives up on a stale ticket.
const MAX_COMMIT_ATTEMPTS: usize = 8;
/// Extra headroom for chaos runs: injected failures consume attempts too
/// (a commit may eat several scheduled panics before it lands).
const MAX_CHAOS_COMMIT_ATTEMPTS: usize = 32;

struct Config {
    requests: usize,
    threads: usize,
    commit_every: usize,
    preset: String,
    verify: bool,
    baseline: bool,
    /// Fail unless concurrent plans/sec ≥ this × sequential plans/sec.
    assert_speedup: Option<f64>,
    chaos: bool,
    chaos_seed: u64,
    refresh: RefreshPolicy,
    /// Spatial shards for the Δ-sweep/commit refresh (0 = unsharded);
    /// bit-identical at any count, so `--verify` holds regardless.
    shards: usize,
}

impl Config {
    fn parse() -> Result<Config, String> {
        let mut cfg = Config {
            requests: 2000,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            commit_every: 50,
            preset: "medium".into(),
            verify: false,
            baseline: false,
            assert_speedup: None,
            chaos: false,
            chaos_seed: 1,
            refresh: RefreshPolicy::Exact,
            shards: 0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("--{name} needs a value"));
            match flag.as_str() {
                "--requests" => cfg.requests = parse(&value("requests")?)?,
                "--threads" => cfg.threads = parse(&value("threads")?)?,
                "--commit-every" => cfg.commit_every = parse(&value("commit-every")?)?,
                "--city" => cfg.preset = value("city")?,
                "--verify" => cfg.verify = true,
                "--baseline" => cfg.baseline = true,
                "--assert-speedup" => cfg.assert_speedup = Some(parse(&value("assert-speedup")?)?),
                "--chaos" => cfg.chaos = true,
                "--chaos-seed" => cfg.chaos_seed = parse(&value("chaos-seed")?)?,
                "--shards" => cfg.shards = parse(&value("shards")?)?,
                "--refresh" => {
                    cfg.refresh = match value("refresh")?.as_str() {
                        "exact" => RefreshPolicy::Exact,
                        "approximate" => RefreshPolicy::approximate(),
                        other => {
                            return Err(format!("--refresh wants exact|approximate, got `{other}`"))
                        }
                    }
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if cfg.threads == 0 || cfg.requests == 0 {
            return Err("--threads and --requests must be ≥ 1".into());
        }
        Ok(cfg)
    }

    fn max_commit_attempts(&self) -> usize {
        if self.chaos {
            MAX_CHAOS_COMMIT_ATTEMPTS
        } else {
            MAX_COMMIT_ATTEMPTS
        }
    }
}

/// The chaos schedule: one panic at every registered failpoint early on
/// (so each is provably survived, including the lock-poisoning swap site)
/// plus a seeded batch of extra faults. Hit-count based, so the same seed
/// replays the same run.
fn chaos_plan(seed: u64) -> FailPlan {
    FailPlan::new()
        .panic_at(site::COMMIT_APPLY, 1)
        .panic_at(site::SESSION_REFRESH, 1)
        .panic_at(site::SNAPSHOT_PUBLISH, 1)
        .panic_at(site::SNAPSHOT_SWAP, 1)
        .merged(FailPlan::seeded(seed, &site::ALL, 4, 40))
}

fn parse<T: std::str::FromStr>(v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("cannot parse `{v}`"))
}

/// What one worker thread measured.
#[derive(Default)]
struct WorkerStats {
    plan_lat: Vec<Duration>,
    plans: usize,
    commit_give_ups: usize,
    /// `Failed` outcomes survived (chaos mode): retried and recovered.
    commit_failures: usize,
    /// `Overloaded` outcomes survived: backed off and retried.
    commit_sheds: usize,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let cfg = match Config::parse() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Same fixture as the `multi_route` benches so the numbers line up.
    let city = match cfg.preset.as_str() {
        "small" => CityConfig::small().generate(),
        "medium" => CityConfig::medium().generate(),
        other => {
            eprintln!("loadgen: unknown --city `{other}` (small|medium)");
            std::process::exit(2);
        }
    };
    let demand = DemandModel::from_city(&city);
    let mut params = CtBusParams::small_defaults();
    params.k = 10;
    params.sn = 300;
    params.it_max = 600;
    params.parallelism.shards = cfg.shards;
    let mode = PlannerMode::EtaPre;
    if cfg.shards > 1 {
        eprintln!("loadgen: spatial sharding — {} shards for sweep and refresh", cfg.shards);
    }

    eprintln!("loadgen: building initial snapshot ({})…", cfg.preset);
    let mut state = ServeState::new(city.clone(), demand.clone(), params).with_refresh(cfg.refresh);
    if !cfg.refresh.is_exact() {
        eprintln!("loadgen: approximate refresh tier — commits skip the full Δ re-sweep");
    }
    let injector = cfg.chaos.then(|| chaos_plan(cfg.chaos_seed).injector());
    if let Some(injector) = &injector {
        fault::silence_injected_panics();
        state = state.with_faults(Arc::clone(injector));
        eprintln!(
            "loadgen: chaos mode — {} scheduled faults (seed {})",
            chaos_plan(cfg.chaos_seed).len(),
            cfg.chaos_seed
        );
    }
    let state = Arc::new(state);

    // ── Sequential back-to-back baseline (the denominator of the speedup
    // criterion): one thread, plan after plan on the published snapshot.
    let seq_samples = cfg.requests.min(32);
    let mut seq_lat = Vec::with_capacity(seq_samples);
    let seq_t0 = Instant::now();
    for _ in 0..seq_samples {
        let t = Instant::now();
        let plan = state.session().plan(mode);
        std::hint::black_box(&plan);
        seq_lat.push(t.elapsed());
    }
    let seq_wall = seq_t0.elapsed();
    seq_lat.sort_unstable();
    let seq_ns_per_plan = seq_wall.as_nanos() / seq_samples as u128;
    let seq_plans_per_sec = seq_samples as f64 / seq_wall.as_secs_f64();
    eprintln!(
        "loadgen: sequential baseline {seq_plans_per_sec:.1} plans/sec \
         (median {:.2} ms over {seq_samples} plans)",
        percentile(&seq_lat, 0.5).as_secs_f64() * 1e3
    );

    // ── Concurrent run: workers race over one shared request counter.
    let next = AtomicUsize::new(0);
    let applied: Mutex<Vec<(u64, RoutePlan)>> = Mutex::new(Vec::new());
    let samples: Mutex<Vec<(u64, RoutePlan)>> = Mutex::new(Vec::new());
    let commit_lat: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

    let conc_t0 = Instant::now();
    let max_attempts = cfg.max_commit_attempts();
    let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|_| {
                let (state, next) = (&state, &next);
                let (applied, samples, commit_lat) = (&applied, &samples, &commit_lat);
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.requests {
                            break;
                        }
                        let is_commit =
                            cfg.commit_every > 0 && i % cfg.commit_every == cfg.commit_every - 1;
                        if is_commit {
                            // Plan, submit, re-plan on a fresh snapshot if
                            // another commit won the race (optimistic
                            // concurrency — the stale plan's candidate ids
                            // no longer index the published pool).
                            for attempt in 1..=max_attempts {
                                let snapshot = state.current();
                                let t = Instant::now();
                                let result = snapshot.session().plan(mode);
                                stats.plan_lat.push(t.elapsed());
                                stats.plans += 1;
                                state.record_plans(1);
                                if result.best.is_empty() || result.best.objective <= 0.0 {
                                    break; // network saturated: nothing to commit
                                }
                                let t = Instant::now();
                                let ticket = CommitTicket::new(&snapshot, result.best.clone());
                                match state.commit(ticket) {
                                    CommitOutcome::Applied { generation, .. } => {
                                        commit_lat
                                            .lock()
                                            .expect("commit_lat poisoned")
                                            .push(t.elapsed());
                                        applied
                                            .lock()
                                            .expect("applied poisoned")
                                            .push((generation, result.best));
                                        break;
                                    }
                                    CommitOutcome::Stale { .. } => {
                                        if attempt == max_attempts {
                                            stats.commit_give_ups += 1;
                                        }
                                    }
                                    // Injected (or real) failure, contained by
                                    // the serving layer: nothing published,
                                    // re-plan on a fresh checkout and retry.
                                    CommitOutcome::Failed { .. } => {
                                        stats.commit_failures += 1;
                                        if attempt == max_attempts {
                                            stats.commit_give_ups += 1;
                                        }
                                    }
                                    // Shed under load: back off and retry.
                                    CommitOutcome::Overloaded { .. } => {
                                        stats.commit_sheds += 1;
                                        std::thread::yield_now();
                                        if attempt == max_attempts {
                                            stats.commit_give_ups += 1;
                                        }
                                    }
                                    // loadgen submits only plans it computed on
                                    // the ticket's own snapshot — Invalid means
                                    // the validator or the planner broke.
                                    CommitOutcome::Invalid { reason } => {
                                        panic!("loadgen produced an invalid ticket: {reason}")
                                    }
                                    CommitOutcome::Empty => break,
                                }
                            }
                        } else {
                            let snapshot = state.current();
                            let t = Instant::now();
                            let result = if i % 2 == 1 {
                                // What-if: fork a branch off the checked-out
                                // session and plan on the fork.
                                snapshot.session().branch().plan(mode)
                            } else {
                                snapshot.session().plan(mode)
                            };
                            stats.plan_lat.push(t.elapsed());
                            stats.plans += 1;
                            state.record_plans(1);
                            if i % SAMPLE_EVERY == 0 {
                                samples
                                    .lock()
                                    .expect("samples poisoned")
                                    .push((snapshot.generation(), result.best));
                            }
                        }
                    }
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let conc_wall = conc_t0.elapsed();

    // ── Aggregate.
    let mut plan_lat: Vec<Duration> = workers.iter().flat_map(|w| w.plan_lat.clone()).collect();
    plan_lat.sort_unstable();
    let total_plans: usize = workers.iter().map(|w| w.plans).sum();
    let give_ups: usize = workers.iter().map(|w| w.commit_give_ups).sum();
    let failures: usize = workers.iter().map(|w| w.commit_failures).sum();
    let sheds: usize = workers.iter().map(|w| w.commit_sheds).sum();
    let mut applied = applied.into_inner().expect("applied poisoned");
    applied.sort_by_key(|(generation, _)| *generation);
    let samples = samples.into_inner().expect("samples poisoned");
    let mut commit_lat = commit_lat.into_inner().expect("commit_lat poisoned");
    commit_lat.sort_unstable();

    // ── Chaos recovery: with the workload done (and most of the fault
    // schedule burned), one more plan → commit must go through — the
    // service is not allowed to stay wedged after a storm of injected
    // panics (including the one that poisoned the snapshot lock).
    let mut recovery_applied = false;
    if let Some(injector) = &injector {
        let mut recovered_after = None;
        for attempt in 1..=MAX_CHAOS_COMMIT_ATTEMPTS {
            let snapshot = state.current();
            let result = snapshot.session().plan(mode);
            state.record_plans(1);
            if result.best.is_empty() || result.best.objective <= 0.0 {
                eprintln!("loadgen: chaos recovery — network saturated, nothing left to commit");
                recovered_after = Some(attempt);
                break;
            }
            let ticket = CommitTicket::new(&snapshot, result.best.clone());
            match state.commit(ticket) {
                CommitOutcome::Applied { generation, .. } => {
                    applied.push((generation, result.best));
                    recovered_after = Some(attempt);
                    recovery_applied = true;
                    break;
                }
                CommitOutcome::Invalid { reason } => {
                    panic!("loadgen recovery produced an invalid ticket: {reason}")
                }
                // Stale (another late worker), Failed (leftover scheduled
                // fault), Overloaded: retry.
                _ => {}
            }
        }
        let recovered_after = recovered_after.unwrap_or_else(|| {
            panic!("chaos recovery: no commit applied within {MAX_CHAOS_COMMIT_ATTEMPTS} attempts")
        });
        let fs = injector.stats();
        println!(
            "chaos: survived {failures} failed and {sheds} shed commit attempts — \
             injector fired {} faults ({} panics, {} delays, {} errors) over {} hits; \
             recovered in {recovered_after} attempt(s)",
            fs.fired(),
            fs.panics,
            fs.delays,
            fs.errors,
            fs.hits
        );
        // Every commit attempt hits COMMIT_APPLY, whose first hit is a
        // scheduled panic — so any commit traffic at all must have fired.
        assert!(fs.hits == 0 || fs.panics > 0, "chaos run saw commits but fired no panic");
    }
    let serve_stats = state.stats();

    let plans_per_sec = total_plans as f64 / conc_wall.as_secs_f64();
    let conc_ns_per_plan = conc_wall.as_nanos() / (total_plans.max(1)) as u128;
    let speedup = plans_per_sec / seq_plans_per_sec;
    println!(
        "loadgen: {total_plans} plans on {} threads in {:.2}s — {plans_per_sec:.1} plans/sec \
         ({speedup:.2}x sequential)",
        cfg.threads,
        conc_wall.as_secs_f64()
    );
    if !plan_lat.is_empty() {
        println!(
            "latency p50 {:.2} ms | p99 {:.2} ms | max {:.2} ms",
            percentile(&plan_lat, 0.5).as_secs_f64() * 1e3,
            percentile(&plan_lat, 0.99).as_secs_f64() * 1e3,
            percentile(&plan_lat, 1.0).as_secs_f64() * 1e3
        );
    }
    println!(
        "commits: {} applied, {} stale, {} failed, {} shed, {} invalid, {give_ups} gave up — \
         final generation {} ({})",
        serve_stats.commits_applied,
        serve_stats.commits_stale,
        serve_stats.commits_failed,
        serve_stats.commits_shed,
        serve_stats.commits_invalid,
        serve_stats.generation,
        if serve_stats.degraded() { "DEGRADED" } else { "healthy" }
    );
    if !commit_lat.is_empty() {
        println!(
            "commit apply latency median {:.1} ms | max {:.1} ms",
            percentile(&commit_lat, 0.5).as_secs_f64() * 1e3,
            percentile(&commit_lat, 1.0).as_secs_f64() * 1e3
        );
    }

    // ── Oracle verification (see module docs).
    if cfg.verify {
        assert!(total_plans > 0 && plans_per_sec > 0.0, "verify: zero throughput");
        if cfg.chaos {
            // Failed/shed/invalid commits must publish nothing: the
            // generation advances once per *applied* commit, exactly.
            assert_eq!(
                serve_stats.generation, serve_stats.commits_applied,
                "verify: generation diverged from applied commits under chaos"
            );
            assert!(
                !recovery_applied || !serve_stats.degraded(),
                "verify: service still degraded after a successful chaos recovery"
            );
        }
        let rounds = applied.len();
        for (i, (generation, _)) in applied.iter().enumerate() {
            assert_eq!(
                *generation,
                i as u64 + 1,
                "verify: commit generations have gaps: {:?}",
                applied.iter().map(|(g, _)| *g).collect::<Vec<_>>()
            );
        }
        if cfg.refresh.is_exact() {
            let reference = plan_multiple_reference(&city, &demand, params, rounds, mode);
            assert_eq!(reference.len(), rounds, "verify: oracle stopped early");
            for (i, (_, plan)) in applied.iter().enumerate() {
                assert_eq!(
                    *plan, reference[i],
                    "verify: applied commit {i} diverged from the sequential oracle"
                );
            }
            let mut checked = 0usize;
            for (generation, plan) in &samples {
                // A read-only plan at generation g equals the oracle's
                // round-g plan (the one commit g+1 would apply).
                if (*generation as usize) < rounds {
                    assert_eq!(
                        *plan, reference[*generation as usize],
                        "verify: sampled plan at generation {generation} diverged from the oracle"
                    );
                    checked += 1;
                }
            }
            println!(
                "verify: OK — {rounds} applied commits and {checked}/{} sampled plans \
                 match the sequential oracle",
                samples.len()
            );
        } else {
            // The approximate tier legitimately diverges from the exact
            // oracle (that drift is the drift harness's job to bound);
            // structural invariants still hold.
            println!(
                "verify: OK — {rounds} applied commits, gapless generations \
                 (approximate refresh: oracle equality not applicable; \
                 drift is bounded by the drift harness)"
            );
        }
    }
    if let Some(min_speedup) = cfg.assert_speedup {
        assert!(speedup >= min_speedup, "speedup {speedup:.2}x below required {min_speedup:.2}x");
    }

    // ── Baseline labels (same line format as the vendored criterion's
    // `write_baseline`, so entries merge cleanly across harnesses).
    if cfg.baseline {
        let p99 = percentile(&plan_lat, 0.99).as_nanos();
        let p50 = percentile(&plan_lat, 0.5).as_nanos();
        let mut records = vec![
            (
                "loadgen/seq_plan_ns/medium".to_string(),
                seq_ns_per_plan,
                seq_ns_per_plan,
                seq_ns_per_plan,
                seq_samples,
            ),
            (
                format!("loadgen/concurrent_plan_ns/t{}", cfg.threads),
                conc_ns_per_plan,
                conc_ns_per_plan,
                conc_ns_per_plan,
                total_plans,
            ),
            (format!("loadgen/plan_p99_ns/t{}", cfg.threads), p50, p99, p99, plan_lat.len()),
        ];
        if !commit_lat.is_empty() {
            let c50 = percentile(&commit_lat, 0.5).as_nanos();
            records.push((
                "loadgen/commit_apply_ns".to_string(),
                commit_lat[0].as_nanos(),
                c50,
                c50,
                commit_lat.len(),
            ));
        }
        merge_baseline(&records);
    }
}
