//! End-to-end and property tests for the map-matching pipeline:
//! ground truth → simulated GPS → HMM match → stitched trajectories.

use ct_data::CityConfig;
use ct_match::{
    evaluate_match, project_to_segment, simulate_trace, stitch_route, viterbi::viterbi,
    viterbi::LatticeStep, CandidateIndex, GpsSimConfig, HmmParams, MapMatcher,
};
use ct_spatial::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn city_scale_matching_recovers_demand_paths() {
    let city = CityConfig::small().trajectories(60).seed(42).generate();
    let matcher = MapMatcher::new(&city.road, HmmParams::default());
    let cfg = GpsSimConfig { noise_sigma_m: 10.0, sample_interval_s: 8.0, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(1234);

    let mut f1_sum = 0.0;
    let mut n = 0usize;
    for truth in city.trajectories.iter().filter(|t| t.len() >= 3).take(25) {
        let trace = simulate_trace(&city.road, truth, &cfg, &mut rng);
        let result = matcher.match_trace(&trace);
        let stitched = stitch_route(&city.road, &result);
        for t in &stitched {
            assert!(t.is_consistent(&city.road), "stitched path inconsistent");
        }
        let acc = evaluate_match(&city.road, truth, &stitched);
        f1_sum += acc.f1();
        n += 1;
    }
    assert!(n >= 10, "not enough usable trajectories in the small city");
    let mean_f1 = f1_sum / n as f64;
    assert!(mean_f1 >= 0.7, "mean F1 {mean_f1:.3} too low on city-scale matching");
}

#[test]
fn matched_demand_approximates_true_demand() {
    // The whole point of the substrate: demand aggregated from matched
    // trajectories should track demand from ground truth.
    let city = CityConfig::small().trajectories(40).seed(7).generate();
    let matcher = MapMatcher::new(&city.road, HmmParams::default());
    let cfg = GpsSimConfig { noise_sigma_m: 8.0, sample_interval_s: 6.0, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(99);

    let truths: Vec<_> =
        city.trajectories.iter().filter(|t| t.len() >= 3).take(20).cloned().collect();
    let mut matched_all = Vec::new();
    for truth in &truths {
        let trace = simulate_trace(&city.road, truth, &cfg, &mut rng);
        matched_all.extend(stitch_route(&city.road, &matcher.match_trace(&trace)));
    }
    let true_demand = ct_data::DemandModel::new(&city.road, &truths);
    let est_demand = ct_data::DemandModel::new(&city.road, &matched_all);

    // Compare total demand mass: within 35% (noise adds/drops edges).
    let (t, e) = (true_demand.total_weight(), est_demand.total_weight());
    assert!(t > 0.0);
    let rel = (t - e).abs() / t;
    assert!(rel < 0.35, "matched demand mass off by {:.0}%", rel * 100.0);
}

#[test]
fn dropout_still_yields_connected_segments() {
    let city = CityConfig::small().trajectories(30).seed(5).generate();
    let matcher = MapMatcher::new(&city.road, HmmParams::default());
    let cfg = GpsSimConfig {
        noise_sigma_m: 10.0,
        sample_interval_s: 5.0,
        dropout: 0.4,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(31);
    let truth = city
        .trajectories
        .iter()
        .filter(|t| t.len() >= 5)
        .max_by_key(|t| t.len())
        .expect("a long trajectory");
    let trace = simulate_trace(&city.road, truth, &cfg, &mut rng);
    let result = matcher.match_trace(&trace);
    let stitched = stitch_route(&city.road, &result);
    assert!(!stitched.is_empty());
    for t in &stitched {
        assert!(t.is_consistent(&city.road));
    }
}

proptest! {
    #[test]
    fn segment_projection_invariants(
        px in -500.0..500.0f64, py in -500.0..500.0f64,
        ax in -500.0..500.0f64, ay in -500.0..500.0f64,
        bx in -500.0..500.0f64, by in -500.0..500.0f64,
    ) {
        let p = Point::new(px, py);
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let (q, t) = project_to_segment(&p, &a, &b);
        prop_assert!((0.0..=1.0).contains(&t));
        // The projection is never farther than either endpoint.
        let d = p.dist(&q);
        prop_assert!(d <= p.dist(&a) + 1e-9);
        prop_assert!(d <= p.dist(&b) + 1e-9);
        // The projection lies on the segment: |aq| + |qb| == |ab|.
        prop_assert!((a.dist(&q) + q.dist(&b) - a.dist(&b)).abs() < 1e-6);
    }

    #[test]
    fn candidate_query_respects_radius_and_order(
        qx in 0.0..400.0f64, qy in 0.0..400.0f64, radius in 10.0..200.0f64,
    ) {
        let mut positions = Vec::new();
        for r in 0..5 {
            for c in 0..5 {
                positions.push(Point::new(c as f64 * 100.0, r as f64 * 100.0));
            }
        }
        let mut edges = Vec::new();
        for r in 0..5u32 {
            for c in 0..5u32 {
                let u = r * 5 + c;
                if c + 1 < 5 { edges.push(ct_graph::RoadEdge { u, v: u + 1, length: 100.0 }); }
                if r + 1 < 5 { edges.push(ct_graph::RoadEdge { u, v: u + 5, length: 100.0 }); }
            }
        }
        let road = ct_graph::RoadNetwork::new(positions, edges);
        let idx = CandidateIndex::new(&road, 120.0);
        let cands = idx.candidates(&road, &Point::new(qx, qy), radius, 16);
        for c in &cands {
            prop_assert!(c.dist <= radius + 1e-9);
            prop_assert!((0.0..=1.0).contains(&c.t));
        }
        for w in cands.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        // Inside the grid interior every query within 50 m of an edge must
        // return something: the nearest edge is at most 50 m away.
        if radius >= 51.0 {
            prop_assert!(!cands.is_empty());
        }
    }

    #[test]
    fn viterbi_on_random_lattices_is_total_and_finite(
        seed in 0u64..5000,
        n_steps in 1usize..6,
        n_cand in 1usize..4,
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let steps: Vec<LatticeStep> = (0..n_steps).map(|i| LatticeStep {
            sample_idx: i,
            pos: Point::new(0.0, 0.0),
            candidates: (0..n_cand).map(|c| ct_match::EdgeProjection {
                edge: c as u32,
                point: Point::new(0.0, 0.0),
                t: 0.5,
                dist: 1.0,
            }).collect(),
            emission: (0..n_cand).map(|_| -rng.gen_range(0.0f64..10.0)).collect(),
        }).collect();
        let transitions: Vec<Vec<Vec<f64>>> = (1..n_steps).map(|_| {
            (0..n_cand).map(|_| (0..n_cand).map(|_| {
                if rng.gen_bool(0.2) { f64::NEG_INFINITY } else { -rng.gen_range(0.0f64..5.0) }
            }).collect()).collect()
        }).collect();
        let r = viterbi(&steps, &transitions);
        // Every step is matched exactly once, in order.
        prop_assert_eq!(r.matched.len(), n_steps);
        for (i, m) in r.matched.iter().enumerate() {
            prop_assert_eq!(m.sample_idx, i);
        }
        prop_assert!(r.log_likelihood.is_finite());
        // Breaks are strictly increasing interior indices.
        for w in r.breaks.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &b in &r.breaks {
            prop_assert!(b > 0 && b < n_steps);
        }
        // Segments partition the match.
        let total: usize = r.segments().iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, n_steps);
    }

    #[test]
    fn simulator_times_are_monotone(seed in 0u64..1000, sigma in 0.0..30.0f64) {
        let city = CityConfig::small().trajectories(5).seed(seed).generate();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GpsSimConfig { noise_sigma_m: sigma, ..Default::default() };
        for truth in city.trajectories.iter() {
            let trace = simulate_trace(&city.road, truth, &cfg, &mut rng);
            for w in trace.samples.windows(2) {
                prop_assert!(w[0].t < w[1].t);
            }
            if !truth.nodes.is_empty() && cfg.dropout == 0.0 {
                prop_assert!(!trace.is_empty());
            }
        }
    }
}
