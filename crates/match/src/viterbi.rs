//! Viterbi decoding over the candidate lattice, with break recovery.
//!
//! A *break* occurs when no candidate of a step can be reached from any
//! candidate of the previous step (all transitions −∞): the vehicle
//! teleported as far as the HMM is concerned — disconnected road
//! components, long dropouts, or a candidate radius too small. Rather than
//! failing the whole trace, decoding restarts at the broken step and the
//! result records the boundary, so downstream stitching yields several
//! disjoint path segments.

use ct_spatial::Point;
use serde::{Deserialize, Serialize};

use crate::project::EdgeProjection;

/// One lattice step: a sample that produced at least one candidate.
#[derive(Debug, Clone)]
pub struct LatticeStep {
    /// Index of the originating sample in the trace.
    pub sample_idx: usize,
    /// Observed sample position (used for transition straight-line gaps).
    pub pos: Point,
    /// Candidate projections, nearest first.
    pub candidates: Vec<EdgeProjection>,
    /// Emission log-probability per candidate (aligned with `candidates`).
    pub emission: Vec<f64>,
}

/// One matched sample: which candidate won.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchedPoint {
    /// Index of the sample in the input trace.
    pub sample_idx: usize,
    /// The winning candidate projection.
    pub candidate: EdgeProjection,
}

/// The output of map-matching one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchResult {
    /// Matched samples in trace order.
    pub matched: Vec<MatchedPoint>,
    /// Indices into `matched` where a new connected segment begins
    /// (the implicit first segment start at 0 is not listed).
    pub breaks: Vec<usize>,
    /// Sample indices that produced no candidates at all.
    pub unmatched: Vec<usize>,
    /// Total log-likelihood of the decoded sequence (sums emission and
    /// transition scores; break restarts contribute emission only).
    pub log_likelihood: f64,
}

impl MatchResult {
    /// The matched points split into connected segments at the breaks.
    pub fn segments(&self) -> Vec<&[MatchedPoint]> {
        if self.matched.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.breaks.len() + 1);
        let mut start = 0usize;
        for &b in &self.breaks {
            out.push(&self.matched[start..b]);
            start = b;
        }
        out.push(&self.matched[start..]);
        out
    }

    /// Deduplicated road edges visited by the match, in first-visit order.
    pub fn matched_edges(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for m in &self.matched {
            if !out.contains(&m.candidate.edge) {
                out.push(m.candidate.edge);
            }
        }
        out
    }
}

/// Runs Viterbi over `steps` joined by `transitions`
/// (`transitions[i][p][c]` is the log-probability of moving from candidate
/// `p` of step `i` to candidate `c` of step `i+1`).
///
/// # Panics
/// Panics if `transitions.len() + 1 != steps.len()` (unless both empty) or
/// if a matrix's dimensions do not match its steps.
pub fn viterbi(steps: &[LatticeStep], transitions: &[Vec<Vec<f64>>]) -> MatchResult {
    if steps.is_empty() {
        return MatchResult::default();
    }
    assert_eq!(
        transitions.len() + 1,
        steps.len(),
        "need exactly one transition matrix per consecutive step pair"
    );

    // delta[c]: best log-prob of any path ending in candidate c of the
    // current step; back[i][c]: the predecessor candidate at step i.
    let mut delta: Vec<f64> = steps[0].emission.clone();
    let mut back: Vec<Vec<Option<usize>>> = Vec::with_capacity(steps.len());
    back.push(vec![None; steps[0].candidates.len()]);

    let mut breaks = Vec::new();
    let mut segment_start = 0usize; // step index where the current segment began
    let mut log_likelihood = 0.0;
    let mut best_path: Vec<usize> = Vec::with_capacity(steps.len());

    // Finalizes the segment [segment_start, end) by backtracking from the
    // best terminal candidate; appends the chosen candidate indices.
    let finalize = |delta: &[f64],
                    back: &[Vec<Option<usize>>],
                    segment_start: usize,
                    end: usize,
                    best_path: &mut Vec<usize>,
                    log_likelihood: &mut f64| {
        let (mut c, score) = delta
            .iter()
            .enumerate()
            .map(|(i, &d)| (i, d))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are not NaN"))
            .expect("non-empty candidate list");
        *log_likelihood += score;
        let mut rev = Vec::with_capacity(end - segment_start);
        for i in (segment_start..end).rev() {
            rev.push(c);
            if let Some(p) = back[i][c] {
                c = p;
            }
        }
        best_path.extend(rev.into_iter().rev());
    };

    for i in 1..steps.len() {
        let trans = &transitions[i - 1];
        assert_eq!(trans.len(), steps[i - 1].candidates.len(), "transition rows");
        let cur = &steps[i];
        let mut new_delta = vec![f64::NEG_INFINITY; cur.candidates.len()];
        let mut new_back = vec![None; cur.candidates.len()];
        for (p, row) in trans.iter().enumerate() {
            assert_eq!(row.len(), cur.candidates.len(), "transition cols");
            if delta[p] == f64::NEG_INFINITY {
                continue;
            }
            for (c, &t) in row.iter().enumerate() {
                let score = delta[p] + t;
                if score > new_delta[c] {
                    new_delta[c] = score;
                    new_back[c] = Some(p);
                }
            }
        }
        if new_delta.iter().all(|&d| d == f64::NEG_INFINITY) {
            // Lattice break: finalize the running segment, restart here.
            finalize(&delta, &back, segment_start, i, &mut best_path, &mut log_likelihood);
            breaks.push(i);
            segment_start = i;
            delta = cur.emission.clone();
            back.push(vec![None; cur.candidates.len()]);
        } else {
            for (c, d) in new_delta.iter_mut().enumerate() {
                *d += cur.emission[c];
            }
            delta = new_delta;
            back.push(new_back);
        }
    }
    finalize(&delta, &back, segment_start, steps.len(), &mut best_path, &mut log_likelihood);

    let matched = best_path
        .iter()
        .zip(steps)
        .map(|(&c, step)| MatchedPoint {
            sample_idx: step.sample_idx,
            candidate: step.candidates[c],
        })
        .collect();
    MatchResult { matched, breaks, unmatched: Vec::new(), log_likelihood }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj(edge: u32, dist: f64) -> EdgeProjection {
        EdgeProjection { edge, point: Point::new(0.0, 0.0), t: 0.5, dist }
    }

    fn step(sample_idx: usize, emissions: &[f64]) -> LatticeStep {
        LatticeStep {
            sample_idx,
            pos: Point::new(0.0, 0.0),
            candidates: (0..emissions.len()).map(|i| proj(i as u32, 1.0)).collect(),
            emission: emissions.to_vec(),
        }
    }

    #[test]
    fn single_step_picks_best_emission() {
        let steps = vec![step(0, &[-5.0, -1.0, -3.0])];
        let r = viterbi(&steps, &[]);
        assert_eq!(r.matched.len(), 1);
        assert_eq!(r.matched[0].candidate.edge, 1);
        assert_eq!(r.log_likelihood, -1.0);
    }

    #[test]
    fn transition_outweighs_greedy_emission() {
        // Candidate 0 of step 0 has worse emission but leads to a much
        // better transition; Viterbi must not be greedy.
        let steps = vec![step(0, &[-2.0, -1.0]), step(1, &[0.0, 0.0])];
        let transitions = vec![vec![
            vec![-0.1, -10.0], // from candidate 0
            vec![-9.0, -9.0],  // from candidate 1
        ]];
        let r = viterbi(&steps, &transitions);
        let picks: Vec<u32> = r.matched.iter().map(|m| m.candidate.edge).collect();
        assert_eq!(picks, vec![0, 0]);
        assert!((r.log_likelihood - (-2.0 - 0.1 + 0.0)).abs() < 1e-12);
    }

    #[test]
    fn all_infinite_transitions_break_the_lattice() {
        let steps = vec![step(0, &[-1.0]), step(7, &[-2.0])];
        let transitions = vec![vec![vec![f64::NEG_INFINITY]]];
        let r = viterbi(&steps, &transitions);
        assert_eq!(r.matched.len(), 2);
        assert_eq!(r.breaks, vec![1]);
        // Likelihood = both segments' emissions, no transition.
        assert!((r.log_likelihood - (-3.0)).abs() < 1e-12);
        let segs = r.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len(), 1);
        assert_eq!(segs[1].len(), 1);
        assert_eq!(segs[1][0].sample_idx, 7);
    }

    #[test]
    fn partial_reachability_avoids_the_break() {
        // Only candidate 1 of step 1 is reachable; no break, and the
        // unreachable candidate is never picked even with a great emission.
        let steps = vec![step(0, &[-1.0]), step(1, &[100.0, -50.0])];
        let transitions = vec![vec![vec![f64::NEG_INFINITY, -1.0]]];
        let r = viterbi(&steps, &transitions);
        assert!(r.breaks.is_empty());
        assert_eq!(r.matched[1].candidate.edge, 1);
    }

    #[test]
    fn empty_lattice() {
        let r = viterbi(&[], &[]);
        assert!(r.matched.is_empty());
        assert!(r.segments().is_empty());
    }

    #[test]
    fn matched_edges_deduplicates_in_order() {
        let steps = vec![step(0, &[-1.0]), step(1, &[-1.0]), step(2, &[-1.0])];
        let transitions = vec![vec![vec![-1.0]], vec![vec![-1.0]]];
        let mut r = viterbi(&steps, &transitions);
        // All three picked candidate edge 0.
        assert_eq!(r.matched_edges(), vec![0]);
        r.matched[1].candidate.edge = 9;
        assert_eq!(r.matched_edges(), vec![0, 9]);
    }

    #[test]
    #[should_panic(expected = "one transition matrix")]
    fn mismatched_transitions_panic() {
        let steps = vec![step(0, &[-1.0]), step(1, &[-1.0])];
        viterbi(&steps, &[]);
    }

    #[test]
    fn three_step_chain_decodes_global_optimum() {
        // A trap: greedy would pick candidate 0 at step 1, but the global
        // optimum runs through candidate 1.
        let steps = vec![step(0, &[0.0]), step(1, &[-0.5, -1.0]), step(2, &[0.0])];
        let transitions = vec![
            vec![vec![-0.1, -0.2]],
            vec![
                vec![-100.0], // from step-1 candidate 0
                vec![-0.1],   // from step-1 candidate 1
            ],
        ];
        let r = viterbi(&steps, &transitions);
        let picks: Vec<u32> = r.matched.iter().map(|m| m.candidate.edge).collect();
        assert_eq!(picks, vec![0, 1, 0]);
    }
}
