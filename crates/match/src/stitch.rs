//! Stitching matched candidates into connected road trajectories.
//!
//! Each matched point pins the vehicle to a position on one road edge; the
//! stitcher anchors every point at its nearer edge endpoint and joins
//! consecutive anchors with road shortest paths. The result is one
//! [`Trajectory`] per connected match segment, directly consumable by
//! [`ct_data::DemandModel`] — closing the paper's raw-GPS → demand loop.

use ct_data::Trajectory;
use ct_graph::{shortest_path, RoadNetwork};

use crate::viterbi::{MatchResult, MatchedPoint};

/// Converts a match into road trajectories, one per connected segment.
///
/// Segments that collapse to a single point still produce a one-edge
/// trajectory (the vehicle was observed on that edge). Consecutive anchors
/// in different road components split the segment further instead of
/// failing.
pub fn stitch_route(road: &RoadNetwork, result: &MatchResult) -> Vec<Trajectory> {
    let mut out = Vec::new();
    for segment in result.segments() {
        stitch_segment(road, segment, &mut out);
    }
    out
}

/// The endpoint of the matched edge nearer to the projection.
fn anchor(road: &RoadNetwork, m: &MatchedPoint) -> u32 {
    let e = road.edge(m.candidate.edge);
    if m.candidate.t < 0.5 {
        e.u
    } else {
        e.v
    }
}

fn stitch_segment(road: &RoadNetwork, segment: &[MatchedPoint], out: &mut Vec<Trajectory>) {
    if segment.is_empty() {
        return;
    }
    let mut nodes: Vec<u32> = vec![anchor(road, &segment[0])];
    let mut edges: Vec<u32> = Vec::new();
    for m in &segment[1..] {
        let next = anchor(road, m);
        let last = *nodes.last().unwrap();
        if next == last {
            continue;
        }
        match shortest_path(road, last, next) {
            Some(path) => {
                nodes.extend_from_slice(&path.nodes[1..]);
                edges.extend_from_slice(&path.edges);
            }
            None => {
                // Different road component: flush what we have, restart.
                flush(road, &nodes, &edges, segment, out);
                nodes = vec![next];
                edges = Vec::new();
            }
        }
    }
    flush(road, &nodes, &edges, segment, out);
}

/// Emits the accumulated path, falling back to the first matched edge when
/// the anchors never moved.
fn flush(
    road: &RoadNetwork,
    nodes: &[u32],
    edges: &[u32],
    segment: &[MatchedPoint],
    out: &mut Vec<Trajectory>,
) {
    if !edges.is_empty() {
        out.push(Trajectory::new(nodes.to_vec(), edges.to_vec()));
        return;
    }
    // All anchors identical: the whole segment sat on (or near) one spot.
    // Represent it by the first matched edge so demand still sees it.
    let m = &segment[0];
    let e = road.edge(m.candidate.edge);
    out.push(Trajectory::new(vec![e.u, e.v], vec![m.candidate.edge]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::EdgeProjection;
    use ct_graph::RoadEdge;
    use ct_spatial::Point;

    fn grid_road(n: u32, spacing: f64) -> RoadNetwork {
        let mut positions = Vec::new();
        for r in 0..n {
            for c in 0..n {
                positions.push(Point::new(c as f64 * spacing, r as f64 * spacing));
            }
        }
        let mut edges = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let u = r * n + c;
                if c + 1 < n {
                    edges.push(RoadEdge { u, v: u + 1, length: spacing });
                }
                if r + 1 < n {
                    edges.push(RoadEdge { u, v: u + n, length: spacing });
                }
            }
        }
        RoadNetwork::new(positions, edges)
    }

    fn matched(road: &RoadNetwork, edge: u32, t: f64, sample_idx: usize) -> MatchedPoint {
        let e = road.edge(edge);
        let (a, b) = (road.position(e.u), road.position(e.v));
        MatchedPoint {
            sample_idx,
            candidate: EdgeProjection { edge, point: a.lerp(&b, t), t, dist: 0.0 },
        }
    }

    #[test]
    fn straight_run_stitches_to_one_consistent_trajectory() {
        let road = grid_road(3, 100.0);
        // Bottom row edges 0→1→2: find their ids.
        let e01 = road.neighbors(0).iter().find(|&&(v, _)| v == 1).unwrap().1;
        let e12 = road.neighbors(1).iter().find(|&&(v, _)| v == 2).unwrap().1;
        let result = MatchResult {
            matched: vec![
                matched(&road, e01, 0.1, 0),
                matched(&road, e01, 0.9, 1),
                matched(&road, e12, 0.9, 2),
            ],
            ..Default::default()
        };
        let trajs = stitch_route(&road, &result);
        assert_eq!(trajs.len(), 1);
        assert!(trajs[0].is_consistent(&road));
        assert_eq!(trajs[0].edges, vec![e01, e12]);
    }

    #[test]
    fn breaks_produce_separate_trajectories() {
        let road = grid_road(3, 100.0);
        let e01 = road.neighbors(0).iter().find(|&&(v, _)| v == 1).unwrap().1;
        let e12 = road.neighbors(1).iter().find(|&&(v, _)| v == 2).unwrap().1;
        let result = MatchResult {
            matched: vec![
                matched(&road, e01, 0.1, 0),
                matched(&road, e01, 0.9, 1),
                matched(&road, e12, 0.1, 2),
                matched(&road, e12, 0.9, 3),
            ],
            breaks: vec![2],
            ..Default::default()
        };
        let trajs = stitch_route(&road, &result);
        assert_eq!(trajs.len(), 2);
        for t in &trajs {
            assert!(t.is_consistent(&road));
        }
    }

    #[test]
    fn stationary_segment_emits_single_edge() {
        let road = grid_road(3, 100.0);
        let e01 = road.neighbors(0).iter().find(|&&(v, _)| v == 1).unwrap().1;
        let result = MatchResult {
            matched: vec![matched(&road, e01, 0.2, 0), matched(&road, e01, 0.3, 1)],
            ..Default::default()
        };
        let trajs = stitch_route(&road, &result);
        assert_eq!(trajs.len(), 1);
        assert_eq!(trajs[0].edges, vec![e01]);
        assert!(trajs[0].is_consistent(&road));
    }

    #[test]
    fn disconnected_anchors_split_instead_of_failing() {
        let road = RoadNetwork::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(10_000.0, 0.0),
                Point::new(10_100.0, 0.0),
            ],
            vec![RoadEdge { u: 0, v: 1, length: 100.0 }, RoadEdge { u: 2, v: 3, length: 100.0 }],
        );
        // One segment (no declared break) whose anchors hop components —
        // stitcher must still split.
        let result = MatchResult {
            matched: vec![matched(&road, 0, 0.1, 0), matched(&road, 1, 0.9, 1)],
            ..Default::default()
        };
        let trajs = stitch_route(&road, &result);
        assert_eq!(trajs.len(), 2);
        for t in &trajs {
            assert!(t.is_consistent(&road));
        }
    }

    #[test]
    fn empty_result_gives_no_trajectories() {
        let road = grid_road(2, 100.0);
        assert!(stitch_route(&road, &MatchResult::default()).is_empty());
    }
}
