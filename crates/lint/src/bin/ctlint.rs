//! `ctlint` — the workspace lint gate.
//!
//! Usage: `ctlint [--root <path>] [--list-rules]`
//!
//! Lints every `.rs` file under `<root>/src` and `<root>/crates/*/src`
//! with the workspace policy ([`ct_lint::Config::workspace`]) and exits
//! nonzero when any unsuppressed finding remains. With no `--root`, the
//! workspace root is found by walking up from the current directory to
//! the first `Cargo.toml` containing `[workspace]`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ct_lint::{rule, Config, Linter};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ctlint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in rule::SUPPRESSIBLE {
                    println!("{r}");
                }
                println!("{}", rule::BAD_ALLOW);
                println!("{}", rule::UNUSED_ALLOW);
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ctlint: unknown argument `{other}` (usage: ctlint [--root <path>] [--list-rules])");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("ctlint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let files = match ct_lint::workspace_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ctlint: cannot enumerate sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut linter = Linter::new(Config::workspace());
    let mut checked = 0usize;
    for path in &files {
        let rel = relative(path, &root);
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ctlint: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        linter.check_file(&rel, &src);
        checked += 1;
    }
    let findings = linter.finish();
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("ctlint: {checked} files clean");
        ExitCode::SUCCESS
    } else {
        println!("ctlint: {} finding(s) in {checked} files", findings.len());
        ExitCode::FAILURE
    }
}

/// Workspace-relative path with forward slashes (rule scoping keys on it).
fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Walks up from the current directory to a `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
