// Fixture: wall-clock reads in kernel code.

use std::time::{Instant, SystemTime};

fn kernel(x: f64) -> f64 {
    let t0 = Instant::now(); //~ wall-clock
    let _stamp = SystemTime::now(); //~ wall-clock
    x * t0.elapsed().as_secs_f64()
}

fn strings_and_comments_do_not_count() -> &'static str {
    // Instant::now() in a comment is fine.
    "Instant::now() in a string is fine"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let _t = Instant::now();
    }
}
