//! Spatial sharding of point sets for partitioned planning.
//!
//! A [`ShardMap`] assigns every point (road-network node, in the planner's
//! use) to one of `num_shards` spatial shards. Shards are built from the
//! same uniform-grid machinery as [`crate::GridIndex`]: points are bucketed
//! into grid cells, the cells are walked in sorted key order, and
//! consecutive cells are greedily packed into shards of roughly equal point
//! count. The construction is fully deterministic — it depends only on the
//! point coordinates and the requested shard count, never on hash or thread
//! order — so shard assignments can participate in the workspace's
//! bit-identity contract.
//!
//! Sharding is a *locality hint*, not a semantic partition: consumers must
//! produce identical results for every shard count (see `ct_core::shard`).

use std::collections::BTreeMap;

use crate::point::Point;

/// How many grid cells each shard is carved from, on average. More cells
/// per shard gives the greedy packer finer granularity (better balance) at
/// the cost of less spatial compactness per shard.
const CELLS_PER_SHARD: usize = 16;

/// A deterministic assignment of points to spatial shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shard_of: Vec<u32>,
    num_shards: usize,
}

impl ShardMap {
    /// Partitions `points` into (at most) `num_shards` spatial shards.
    ///
    /// `num_shards` is clamped to at least 1 and at most `points.len()`
    /// (an empty point set yields a single empty shard). Shard ids are
    /// dense in `0..num_shards()`, but individual shards may be empty when
    /// the spatial distribution is extremely skewed.
    pub fn build(points: &[Point], num_shards: usize) -> Self {
        let n = points.len();
        let num_shards = num_shards.clamp(1, n.max(1));
        if num_shards == 1 || n == 0 {
            return ShardMap { shard_of: vec![0; n], num_shards: 1 };
        }

        // Grid resolution: aim for CELLS_PER_SHARD occupied-area cells per
        // shard so the packer has granularity to balance with.
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let span_x = (max_x - min_x).max(1e-9);
        let span_y = (max_y - min_y).max(1e-9);
        let mut cell = (span_x * span_y / (num_shards * CELLS_PER_SHARD) as f64).sqrt();
        if !cell.is_finite() || cell <= 0.0 {
            cell = 1.0;
        }

        // Bucket points into grid cells. A BTreeMap keeps the cell walk in
        // sorted key order, independent of insertion or hash order.
        let mut cells: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
        for (id, p) in points.iter().enumerate() {
            let key =
                (((p.x - min_x) / cell).floor() as i64, ((p.y - min_y) / cell).floor() as i64);
            cells.entry(key).or_default().push(id as u32);
        }

        // Greedily pack consecutive sorted cells into shards of about
        // ceil(n / num_shards) points. A single oversized cell stays in one
        // shard (cells are never split), so shards are balanced best-effort.
        let target = n.div_ceil(num_shards);
        let mut shard_of = vec![0u32; n];
        let mut shard = 0usize;
        let mut in_shard = 0usize;
        for ids in cells.values() {
            if in_shard > 0 && in_shard + ids.len() > target && shard + 1 < num_shards {
                shard += 1;
                in_shard = 0;
            }
            for &id in ids {
                shard_of[id as usize] = shard as u32;
            }
            in_shard += ids.len();
        }
        ShardMap { shard_of, num_shards }
    }

    /// Partitions `points` so each shard holds about `target_points`
    /// points. `target_points == 0` disables sharding (one shard).
    pub fn with_target_points(points: &[Point], target_points: usize) -> Self {
        let shards =
            if target_points == 0 { 1 } else { points.len().div_ceil(target_points).max(1) };
        ShardMap::build(points, shards)
    }

    /// The shard holding point `id`.
    pub fn shard_of(&self, id: u32) -> u32 {
        self.shard_of[id as usize]
    }

    /// Number of shards (≥ 1; some may be empty).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of points in the map.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// Whether the map covers no points.
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// Point count per shard, indexed by shard id.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push(Point::new(i as f64 * 10.0, (i % 5) as f64 * 10.0));
        }
        for i in 0..40 {
            pts.push(Point::new(100_000.0 + i as f64 * 10.0, (i % 5) as f64 * 10.0));
        }
        pts
    }

    #[test]
    fn one_shard_maps_everything_to_zero() {
        let pts = two_clusters();
        let m = ShardMap::build(&pts, 1);
        assert_eq!(m.num_shards(), 1);
        assert!((0..pts.len() as u32).all(|i| m.shard_of(i) == 0));
    }

    #[test]
    fn empty_points_yield_single_empty_shard() {
        let m = ShardMap::build(&[], 8);
        assert_eq!(m.num_shards(), 1);
        assert!(m.is_empty());
        assert_eq!(m.shard_sizes(), vec![0]);
    }

    #[test]
    fn shard_ids_are_in_range_and_cover_all_points() {
        let pts = two_clusters();
        for shards in [2usize, 3, 4, 16] {
            let m = ShardMap::build(&pts, shards);
            assert_eq!(m.len(), pts.len());
            assert!(m.num_shards() <= shards.max(1));
            for i in 0..pts.len() as u32 {
                assert!((m.shard_of(i) as usize) < m.num_shards());
            }
            assert_eq!(m.shard_sizes().iter().sum::<usize>(), pts.len());
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let pts = two_clusters();
        let a = ShardMap::build(&pts, 4);
        let b = ShardMap::build(&pts, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn far_clusters_land_in_different_shards() {
        let pts = two_clusters();
        let m = ShardMap::build(&pts, 2);
        // Every point within a cluster shares its cluster's shard, and the
        // two clusters (100 km apart) get distinct shards.
        let left = m.shard_of(0);
        let right = m.shard_of(40);
        assert_ne!(left, right);
        assert!((0..40).all(|i| m.shard_of(i) == left));
        assert!((40..80).all(|i| m.shard_of(i) == right));
    }

    #[test]
    fn shards_are_roughly_balanced() {
        let mut pts = Vec::new();
        for i in 0..32 {
            for j in 0..32 {
                pts.push(Point::new(i as f64 * 25.0, j as f64 * 25.0));
            }
        }
        let m = ShardMap::build(&pts, 4);
        assert_eq!(m.num_shards(), 4);
        let sizes = m.shard_sizes();
        let target = pts.len() / 4;
        for &s in &sizes {
            assert!(s > 0, "no shard should be empty on a uniform lattice: {sizes:?}");
            assert!(s <= 2 * target, "shard too large: {sizes:?}");
        }
    }

    #[test]
    fn with_target_points_derives_the_shard_count() {
        let pts = two_clusters(); // 80 points
        let m = ShardMap::with_target_points(&pts, 20);
        assert!(m.num_shards() >= 2 && m.num_shards() <= 4, "got {}", m.num_shards());
        assert_eq!(ShardMap::with_target_points(&pts, 0).num_shards(), 1);
        assert_eq!(ShardMap::with_target_points(&pts, 1000).num_shards(), 1);
    }

    #[test]
    fn more_shards_than_points_is_clamped() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let m = ShardMap::build(&pts, 64);
        assert!(m.num_shards() <= 2);
    }
}
