//! Multi-route planning (paper §6.3): plan several routes back to back
//! through one long-lived `PlanningSession`, folding each into the network
//! and zeroing the demand it serves, so each new route chases *unserved*
//! commuters — then fork a what-if branch to compare an alternative
//! without disturbing the main line.
//!
//! ```sh
//! cargo run --release --example multi_route
//! ```

use ct_bus::core::{CtBusParams, PlannerMode, PlanningSession};
use ct_bus::data::{CityConfig, DemandModel};

fn main() {
    let city = CityConfig::small().seed(99).generate();
    let demand = DemandModel::from_city(&city);
    println!("{}: {:?}", city.name, city.stats());

    let params = CtBusParams { k: 8, it_max: 6_000, ..CtBusParams::small_defaults() };
    let mut session = PlanningSession::new(city, demand, params);

    println!(
        "\n{:>3} {:>6} {:>5} {:>10} {:>13} {:>9} {:>10}",
        "#", "edges", "new", "demand", "conn Oλ(μ)", "km", "refresh s"
    );
    let mut what_if = None;
    for i in 0..4 {
        let result = session.plan(PlannerMode::EtaPre);
        if result.best.is_empty() || result.best.objective <= 0.0 {
            break;
        }
        if i == 1 {
            // Cheap fork before the second commit: explore a demand-only
            // alternative on the side (roads/trajectories stay shared).
            let mut branch = session.branch();
            let alt = branch.plan(PlannerMode::VkTsp);
            what_if = Some((alt.best.demand, result.best.demand));
        }
        let p = result.best;
        let summary = session.commit(&p);
        println!(
            "{:>3} {:>6} {:>5} {:>10.0} {:>13.5} {:>9.2} {:>10.3}",
            i + 1,
            p.num_edges(),
            p.num_new_edges(),
            p.demand,
            p.conn_increment,
            p.length_m / 1000.0,
            summary.refresh_secs
        );
    }
    println!("\nplanned {} routes", session.commits());
    if let Some((vk, eta)) = what_if {
        println!(
            "what-if branch at round 2: vk-TSP would have met {vk:.0} demand \
             vs ETA-Pre's {eta:.0} (branch committed nothing to the main line)"
        );
    }
    println!(
        "Demand per route shrinks as earlier routes absorb the hottest \
         corridors; each commit refreshes the pre-computation incrementally \
         instead of rebuilding it (\"refresh s\" ≪ a cold build)."
    );
}
