//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```sh
//! exp <id>            # one experiment: fig1, table2, ..., fig12
//! exp all             # everything, full scale
//! exp all --fast      # everything, reduced scale (smoke run)
//! exp list            # available ids
//! ```

use std::time::Instant;

use ct_bench::experiments;
use ct_bench::harness::ExperimentCtx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    if ids.is_empty() || ids[0] == "list" {
        eprintln!("usage: exp <id>|all [--fast]");
        eprintln!("ids: {}", experiments::all_ids().join(" "));
        std::process::exit(if ids.is_empty() { 2 } else { 0 });
    }

    let mut ctx = ExperimentCtx::new(fast);
    let to_run: Vec<&str> = if ids[0] == "all" { experiments::all_ids().to_vec() } else { ids };

    let t0 = Instant::now();
    for id in to_run {
        eprintln!("\n=== {id} ===");
        let t = Instant::now();
        if !experiments::run(id, &mut ctx) {
            eprintln!("unknown experiment id: {id}");
            eprintln!("ids: {}", experiments::all_ids().join(" "));
            std::process::exit(2);
        }
        eprintln!("[done] {id} in {:.1}s", t.elapsed().as_secs_f64());
    }
    eprintln!("\nall requested experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
