// Fixture: the unsafe audit — missing attr reports at line 1. //~ forbid-unsafe

fn raw_read(p: *const u32) -> u32 {
    unsafe { *p } //~ forbid-unsafe
}

fn justified(p: *const u32) -> u32 {
    // ctlint::allow(forbid-unsafe): vendored-stub interop requires one raw read
    unsafe { *p }
}
