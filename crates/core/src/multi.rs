//! Multi-route planning (paper §6.3).
//!
//! After planning a route, the transit network absorbs its new edges and
//! the demand already served (the road edges the route covers) is zeroed,
//! so the next route seeks *uncovered* demand elsewhere. Repeat `n` times.
//!
//! [`plan_multiple`] drives the rounds through a
//! [`crate::PlanningSession`]: round `r + 1` reuses round `r`'s candidate
//! pool, probes, and workspaces, re-sweeping Δ(e) on the absorbed
//! adjacency instead of rebuilding the whole [`crate::Precomputed`].
//! [`plan_multiple_reference`] is the retained rebuild-per-round oracle;
//! the two are bit-identical for every round, every mode, and every thread
//! count (enforced by the tests here and the proptests in
//! `tests/session_equivalence.rs`).

use ct_data::{City, DemandModel};

use crate::eta::{Planner, PlannerMode};
use crate::metrics::apply_plan;
use crate::params::CtBusParams;
use crate::plan::RoutePlan;
use crate::session::PlanningSession;

/// Plans up to `n` routes sequentially; stops early when no feasible or
/// useful (positive-objective) route remains.
pub fn plan_multiple(
    city: &City,
    demand: &DemandModel,
    params: CtBusParams,
    n: usize,
    mode: PlannerMode,
) -> Vec<RoutePlan> {
    let mut session = PlanningSession::new(city.clone(), demand.clone(), params);
    let mut plans: Vec<RoutePlan> = Vec::with_capacity(n);
    for _ in 0..n {
        // Commit lazily — only when another round will consume the evolved
        // state — so the final round never pays a refresh nobody reads.
        if let Some(prev) = plans.last() {
            session.commit(prev);
        }
        let result = session.plan(mode);
        if result.best.is_empty() || result.best.objective <= 0.0 {
            break;
        }
        plans.push(result.best);
    }
    plans
}

/// The pre-session reference: rebuilds the full pre-computation from
/// scratch every round. Kept as the equivalence oracle for
/// [`plan_multiple`] (same output, bit for bit) and as the baseline leg of
/// the `multi_route_session` bench.
#[doc(hidden)]
pub fn plan_multiple_reference(
    city: &City,
    demand: &DemandModel,
    params: CtBusParams,
    n: usize,
    mode: PlannerMode,
) -> Vec<RoutePlan> {
    let mut plans = Vec::with_capacity(n);
    // `City::clone` shares the road network and trajectories (`Arc`); only
    // the evolving transit layer is ever replaced below.
    let mut current_city = city.clone();
    let mut current_demand = demand.clone();

    for _ in 0..n {
        let planner = Planner::new(&current_city, &current_demand, params);
        let result = planner.run(mode);
        if result.best.is_empty() || result.best.objective <= 0.0 {
            break;
        }
        let plan = result.best;

        // Absorb the new edges into the network.
        let cands = &planner.precomputed().candidates;
        let new_transit = apply_plan(&current_city.transit, &plan, cands);

        // Zero out served demand (paper: set covered edges' demand to zero).
        let covered: Vec<u32> =
            plan.cand_edges.iter().flat_map(|&id| cands.edge(id).road_edges.clone()).collect();
        current_demand.zero_edges(&covered);

        current_city.transit = new_transit;
        plans.push(plan);
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_data::CityConfig;

    #[test]
    fn plans_multiple_distinct_routes() {
        let city = CityConfig::small().seed(55).generate();
        let demand = DemandModel::from_city(&city);
        let mut params = CtBusParams::small_defaults();
        params.k = 6;
        params.it_max = 1_500;
        let plans = plan_multiple(&city, &demand, params, 3, PlannerMode::EtaPre);
        assert!(!plans.is_empty());
        assert!(plans.len() <= 3);
        // Later routes must not re-add the same new stop pairs.
        for i in 0..plans.len() {
            for j in (i + 1)..plans.len() {
                for pair in &plans[i].new_stop_pairs {
                    assert!(
                        !plans[j].new_stop_pairs.contains(pair),
                        "route {j} re-adds new edge {pair:?} of route {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn served_demand_decreases_across_rounds() {
        let city = CityConfig::small().seed(56).generate();
        let demand = DemandModel::from_city(&city);
        let mut params = CtBusParams::small_defaults();
        params.k = 6;
        params.it_max = 1_500;
        params.w = 1.0; // demand-only: makes the decrease assertion crisp
        let plans = plan_multiple(&city, &demand, params, 2, PlannerMode::EtaPre);
        if plans.len() == 2 {
            assert!(
                plans[1].demand <= plans[0].demand + 1e-9,
                "second route demand {} exceeds first {}",
                plans[1].demand,
                plans[0].demand
            );
        }
    }

    #[test]
    fn session_path_matches_rebuild_reference() {
        // The headline contract, on a concrete city (the proptest in
        // tests/session_equivalence.rs covers generated ones).
        let city = CityConfig::small().seed(57).generate();
        let demand = DemandModel::from_city(&city);
        let mut params = CtBusParams::small_defaults();
        params.k = 6;
        params.it_max = 1_200;
        for mode in [PlannerMode::EtaPre, PlannerMode::VkTsp] {
            let session = plan_multiple(&city, &demand, params, 3, mode);
            let reference = plan_multiple_reference(&city, &demand, params, 3, mode);
            assert_eq!(session, reference, "{mode:?} diverged from the rebuild reference");
        }
    }
}
