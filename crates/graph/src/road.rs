//! The road network `G = (V, E)` (paper Definition 1).

use ct_spatial::Point;
use serde::{Deserialize, Serialize};

/// An undirected road segment between two intersections.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadEdge {
    /// One endpoint (road node id).
    pub u: u32,
    /// The other endpoint (road node id).
    pub v: u32,
    /// Travel length in meters.
    pub length: f64,
}

impl RoadEdge {
    /// The endpoint that is not `node`.
    ///
    /// # Panics
    /// Panics if `node` is not an endpoint of this edge.
    pub fn other(&self, node: u32) -> u32 {
        if node == self.u {
            self.v
        } else {
            assert_eq!(node, self.v, "node {node} is not an endpoint");
            self.u
        }
    }
}

/// An undirected road network with projected node positions and a CSR-style
/// adjacency for cache-friendly traversal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    positions: Vec<Point>,
    edges: Vec<RoadEdge>,
    adj_ptr: Vec<usize>,
    /// Flattened adjacency: `(neighbor node, edge id)`.
    adj: Vec<(u32, u32)>,
}

impl RoadNetwork {
    /// Builds a road network from node positions and undirected edges.
    ///
    /// # Panics
    /// Panics if an edge references a node out of range or has a
    /// non-positive length.
    pub fn new(positions: Vec<Point>, edges: Vec<RoadEdge>) -> Self {
        let n = positions.len();
        for (i, e) in edges.iter().enumerate() {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "edge {i} ({},{}) out of bounds for {n} nodes",
                e.u,
                e.v
            );
            assert!(e.length > 0.0, "edge {i} has non-positive length {}", e.length);
        }
        let mut deg = vec![0usize; n];
        for e in &edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let mut adj_ptr = Vec::with_capacity(n + 1);
        adj_ptr.push(0);
        for d in &deg {
            adj_ptr.push(adj_ptr.last().unwrap() + d);
        }
        let mut adj = vec![(0u32, 0u32); adj_ptr[n]];
        let mut cursor = adj_ptr[..n].to_vec();
        for (id, e) in edges.iter().enumerate() {
            adj[cursor[e.u as usize]] = (e.v, id as u32);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize]] = (e.u, id as u32);
            cursor[e.v as usize] += 1;
        }
        RoadNetwork { positions, edges, adj_ptr, adj }
    }

    /// Number of road nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected road edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Position of node `u`.
    pub fn position(&self, u: u32) -> Point {
        self.positions[u as usize]
    }

    /// All node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Edge with id `e`.
    pub fn edge(&self, e: u32) -> &RoadEdge {
        &self.edges[e as usize]
    }

    /// All edges.
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// Neighbors of `u` as `(neighbor node, edge id)` pairs.
    pub fn neighbors(&self, u: u32) -> &[(u32, u32)] {
        &self.adj[self.adj_ptr[u as usize]..self.adj_ptr[u as usize + 1]]
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Total length of all edges, in meters.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> RoadNetwork {
        // 0-1
        // |  |
        // 3-2  plus diagonal 0-2
        let positions = vec![
            Point::new(0.0, 100.0),
            Point::new(100.0, 100.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 0.0),
        ];
        let edges = vec![
            RoadEdge { u: 0, v: 1, length: 100.0 },
            RoadEdge { u: 1, v: 2, length: 100.0 },
            RoadEdge { u: 2, v: 3, length: 100.0 },
            RoadEdge { u: 3, v: 0, length: 100.0 },
            RoadEdge { u: 0, v: 2, length: 141.4 },
        ];
        RoadNetwork::new(positions, edges)
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = square();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 2);
        // Every adjacency entry names an incident edge.
        for u in 0..4u32 {
            for &(v, eid) in g.neighbors(u) {
                let e = g.edge(eid);
                assert!(e.u == u && e.v == v || e.u == v && e.v == u);
            }
        }
    }

    #[test]
    fn other_endpoint() {
        let e = RoadEdge { u: 3, v: 7, length: 1.0 };
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_endpoint_wrong_node_panics() {
        RoadEdge { u: 3, v: 7, length: 1.0 }.other(5);
    }

    #[test]
    fn total_length() {
        assert!((square().total_length() - 541.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_edge_panics() {
        RoadNetwork::new(vec![Point::new(0.0, 0.0)], vec![RoadEdge { u: 0, v: 1, length: 1.0 }]);
    }

    #[test]
    #[should_panic(expected = "non-positive length")]
    fn zero_length_edge_panics() {
        RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![RoadEdge { u: 0, v: 1, length: 0.0 }],
        );
    }
}
