//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies; deterministic per test case.
pub type TestRng = StdRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value (dependent
    /// generation), then draws from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_one(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_one(rng)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Uniformly samples one of the listed values.
pub fn sample_from<T: Clone>(choices: Vec<T>) -> SampleFrom<T> {
    SampleFrom { choices }
}

/// Strategy returned by [`sample_from`].
pub struct SampleFrom<T: Clone> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for SampleFrom<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.choices.is_empty(), "sample_from needs at least one choice");
        self.choices[rng.gen_range(0..self.choices.len())].clone()
    }
}
