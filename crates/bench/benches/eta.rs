//! Criterion microbench behind Table 7: one planning run, ETA (online
//! Lanczos scoring) vs ETA-Pre (pre-computed surrogate), across k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ct_core::{CtBusParams, Planner, PlannerMode};
use ct_data::{CityConfig, DemandModel};

fn bench_eta(c: &mut Criterion) {
    let mut group = c.benchmark_group("eta");
    group.sample_size(10);

    let city = CityConfig::small().seed(77).generate();
    let demand = DemandModel::from_city(&city);

    for k in [6usize, 10, 14] {
        let mut params = CtBusParams::small_defaults();
        params.k = k;
        params.it_max = 400;
        params.sn = 150;
        let planner = Planner::new(&city, &demand, params);

        group.bench_with_input(BenchmarkId::new("eta_online", k), &planner, |b, p| {
            b.iter(|| p.run(PlannerMode::Eta))
        });
        group.bench_with_input(BenchmarkId::new("eta_pre", k), &planner, |b, p| {
            b.iter(|| p.run(PlannerMode::EtaPre))
        });
        group.bench_with_input(BenchmarkId::new("vk_tsp", k), &planner, |b, p| {
            b.iter(|| p.run(PlannerMode::VkTsp))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eta);
criterion_main!(benches);
