//! Figure 11: sensitivity to the weight w, including the ETA-AN
//! (all-neighbors) and ETA-DT (no domination table) ablations.

use ct_core::PlannerMode;

use crate::harness::{f, ExperimentCtx, OutputSink};

/// Runs this experiment and writes its artifacts.
pub fn run(ctx: &mut ExperimentCtx) {
    let mut sink = OutputSink::new("fig11");
    sink.line("# Fig. 11 — sensitivity to w, with AN/DT ablations (ETA-Pre)");
    sink.blank();

    let it_cap = if ctx.fast { 4_000u64 } else { 20_000 };
    let ws = [0.3, 0.5, 0.7];

    let mut json = serde_json::Map::new();
    for name in ctx.main_city_names() {
        ctx.prepare(name);
        sink.line(format!("## {name}"));
        let mut rows = Vec::new();
        let mut area = serde_json::Map::new();
        for &w in &ws {
            for (label, mode) in [
                ("ETA-Pre", PlannerMode::EtaPre),
                ("ETA-AN", PlannerMode::EtaAllNeighbors),
                ("ETA-DT", PlannerMode::EtaNoDomination),
            ] {
                let mut params = ctx.base_params();
                params.w = w;
                params.it_max = it_cap;
                params.sn = if ctx.fast { 800 } else { 2000 };
                let planner = ctx.planner(name, params);
                let res = planner.run(mode);
                let final_obj = res.trace.last().map(|&(_, o)| o).unwrap_or(0.0);
                rows.push(vec![
                    format!("w={w}"),
                    label.to_string(),
                    f(final_obj, 4),
                    res.iterations.to_string(),
                    format!("{:.2}", res.runtime_secs),
                ]);
                area.insert(
                    format!("{label}-w{w}"),
                    serde_json::json!({
                        "trace": res.trace,
                        "iterations": res.iterations,
                        "runtime_secs": res.runtime_secs,
                    }),
                );
            }
        }
        sink.table(&["w", "method", "final objective", "iterations", "runtime (s)"], &rows);
        sink.blank();
        json.insert(name.to_string(), serde_json::Value::Object(area));
    }
    sink.line(
        "Shape checks (paper): convergence is robust across w; the \
         best-neighbor rule and the domination table both prune work \
         (ETA-AN / ETA-DT need more iterations or queue churn for the same \
         objective).",
    );
    sink.write_json(&serde_json::Value::Object(json));
    sink.finish();
}
