//! Extension experiment: CT-Bus's Eq. 2 demand vs RkNNT (paper ref \[57\]).
//!
//! The paper measures demand as trajectory/route edge overlap (Eq. 2);
//! the established alternative it cites is RkNNT — trajectories whose k
//! best-serving routes include the new one. If Eq. 2 is a good ridership
//! surrogate, routes planned under increasing `w` (more demand weight)
//! should capture monotonically more reverse-kNN supporters. This
//! experiment measures exactly that.

use ct_core::{rknn_demand, PlannerMode, RknnParams};
use ct_spatial::Point;

use crate::harness::{ExperimentCtx, OutputSink};

/// Runs this experiment and writes its artifacts.
pub fn run(ctx: &mut ExperimentCtx) {
    let mut sink = OutputSink::new("ext_rknn");
    sink.line("# Extension — Eq. 2 edge-overlap demand vs RkNNT (paper ref [57])");
    sink.blank();

    let city_name = "chicago";
    ctx.prepare(city_name);
    let bundle = ctx.bundle(city_name);
    let city = &bundle.city;
    sink.line(format!(
        "city `{city_name}`: {} trajectories, {} existing routes",
        city.trajectories.len(),
        city.transit.num_routes()
    ));
    sink.blank();

    let ws = [0.0, 0.3, 0.5, 0.7, 1.0];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &w in &ws {
        let mut params = ctx.base_params();
        params.w = w;
        params.k = 20;
        let planner = ctx.planner(city_name, params);
        let plan = planner.run(PlannerMode::EtaPre).best;
        let stops: Vec<Point> = plan.stops.iter().map(|&s| city.transit.stop(s).pos).collect();
        let mut cells = vec![format!("{w:.1}"), format!("{:.0}", plan.demand)];
        for k in [1usize, 2, 3] {
            let d = rknn_demand(city, &stops, &RknnParams { k, ..Default::default() });
            cells.push(format!("{}", d.supporters));
            json.push(serde_json::json!({
                "w": w,
                "k": k,
                "eq2_demand": plan.demand,
                "rknn_supporters": d.supporters,
                "reachable": d.reachable,
            }));
        }
        rows.push(cells);
    }
    sink.table(&["w", "Eq.2 demand Od(μ)", "RkNNT k=1", "k=2", "k=3"], &rows);
    sink.blank();
    sink.line(
        "Shape check: both demand measures rise together with w — the \
         edge-overlap objective CT-Bus optimizes is a faithful surrogate \
         for reverse-kNN ridership capture; the connectivity-only route \
         (w = 0) serves the fewest commuters under either measure.",
    );
    sink.write_json(&serde_json::json!({ "rows": json }));
    sink.finish();
}
