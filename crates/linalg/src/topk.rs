//! Top-k eigenvalues of sparse symmetric matrices.
//!
//! The Lemma 3/4 connectivity bounds need the `2k` (resp. `⌊(k+1)/2⌋`)
//! algebraically largest eigenvalues of the transit adjacency matrix. Two
//! methods are provided:
//!
//! * [`lanczos_topk`] — single-vector Lanczos with full reorthogonalization.
//!   Fast, but like all single-vector Krylov methods it finds one copy of
//!   each *distinct* eigenvalue, so repeated eigenvalues (common in graphs
//!   with symmetric substructures) are under-counted.
//! * [`block_krylov_topk`] — randomized block Krylov with Rayleigh–Ritz
//!   (paper ref \[44\]). A block wider than the largest multiplicity recovers
//!   repeated eigenvalues; this is the default used by the bound code.

use rand::Rng;

use crate::dense::DenseMatrix;
use crate::eig::{full_symmetric_eigenvalues, jacobi_symmetric_eigen};
use crate::error::LinalgError;
use crate::lanczos::lanczos_tridiagonalize;
use crate::matvec::MatVec;
use crate::rng::gaussian_vector;
use crate::tridiag::tridiag_eigenvalues;
use crate::vector::{normalize, orthogonalize_against};

/// Columns with post-orthogonalization norm below this are discarded.
const DEFLATION_TOL: f64 = 1e-10;

/// Top-`k` algebraically largest eigenvalues (descending) via single-vector
/// Lanczos with full reorthogonalization.
///
/// Returns fewer than `k` values if the Krylov space is exhausted first
/// (e.g. highly structured graphs with few distinct eigenvalues).
pub fn lanczos_topk<M: MatVec + ?Sized, R: Rng + ?Sized>(
    a: &M,
    k: usize,
    rng: &mut R,
) -> Result<Vec<f64>, LinalgError> {
    let n = a.n();
    if n == 0 {
        return Err(LinalgError::EmptyInput("matrix"));
    }
    let steps = (2 * k + 20).min(n);
    let v0 = gaussian_vector(rng, n);
    let dec = lanczos_tridiagonalize(a, &v0, steps, false, true)?;
    let mut ritz = tridiag_eigenvalues(&dec.alphas, &dec.betas)?;
    ritz.reverse(); // descending
    ritz.truncate(k);
    Ok(ritz)
}

/// Top-`k` algebraically largest eigenvalues (descending) via randomized
/// block Krylov + Rayleigh–Ritz.
///
/// `block` is the block width (0 picks a default of `max(8, 4)` capped by
/// `n`); widths at least as large as the biggest eigenvalue multiplicity
/// recover repeated eigenvalues.
pub fn block_krylov_topk<M: MatVec + ?Sized, R: Rng + ?Sized>(
    a: &M,
    k: usize,
    block: usize,
    rng: &mut R,
) -> Result<Vec<f64>, LinalgError> {
    let n = a.n();
    if n == 0 {
        return Err(LinalgError::EmptyInput("matrix"));
    }
    if k == 0 {
        return Ok(Vec::new());
    }
    let b = if block == 0 { 8.min(n).max(1) } else { block.min(n) };
    // Enough Krylov columns for the Ritz values we need, plus generous slack
    // so the trailing Ritz values converge (bound validity in Lemmas 3–4
    // degrades if the top eigenvalues are underestimated).
    let target_cols = (4 * k + 48).min(n);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(target_cols);
    // A·q for every accepted basis column, captured as columns are admitted
    // so the Rayleigh–Ritz stage below needs no second matvec pass. The
    // per-column allocations are load-bearing: each product both seeds the
    // next Krylov block (where it is orthogonalized in place) and must
    // survive pristine for T = Qᵀ A Q.
    let mut aq: Vec<Vec<f64>> = Vec::with_capacity(target_cols);
    let mut current: Vec<Vec<f64>> = (0..b).map(|_| gaussian_vector(rng, n)).collect();

    while basis.len() < target_cols && !current.is_empty() {
        let mut next_block: Vec<Vec<f64>> = Vec::with_capacity(current.len());
        for mut col in current.drain(..) {
            orthogonalize_against(&mut col, &basis);
            orthogonalize_against(&mut col, &basis);
            let nm = normalize(&mut col);
            if nm > DEFLATION_TOL {
                let prod = a.matvec_alloc(&col);
                basis.push(col);
                aq.push(prod.clone());
                next_block.push(prod);
                if basis.len() >= target_cols {
                    break;
                }
            }
        }
        current = next_block;
    }

    if basis.is_empty() {
        return Err(LinalgError::EmptyInput("Krylov basis collapsed"));
    }

    // Rayleigh–Ritz: T = Qᵀ A Q over the assembled basis.
    let m = basis.len();
    let mut t = DenseMatrix::zeros(m);
    for i in 0..m {
        for j in i..m {
            let v: f64 = basis[i].iter().zip(&aq[j]).map(|(x, y)| x * y).sum();
            t.set(i, j, v);
            t.set(j, i, v);
        }
    }
    let mut ritz = full_symmetric_eigenvalues(t)?;
    ritz.reverse();
    ritz.truncate(k);
    Ok(ritz)
}

/// Top of a symmetric matrix's spectrum with Ritz vectors, as returned by
/// [`block_krylov_topk_warm`]: `values` descending, `vectors[j]` the unit
/// Ritz vector paired with `values[j]` (`vectors` may be shorter than
/// `values` if the Krylov basis deflated early).
#[derive(Debug, Clone, Default)]
pub struct SpectrumHead {
    /// Top eigenvalue estimates, algebraically largest first.
    pub values: Vec<f64>,
    /// Unit Ritz vectors matching `values` front-to-front.
    pub vectors: Vec<Vec<f64>>,
}

/// Warm-started variant of [`block_krylov_topk`] that seeds the Krylov
/// basis from previously converged Ritz vectors and returns the new Ritz
/// vectors so the *next* call can warm-start in turn.
///
/// `warm` holds the previous spectrum head's vectors (any slice, possibly
/// empty; entries whose length differs from `n` are ignored). Because the
/// warm vectors already span a near-invariant subspace of a slightly
/// perturbed matrix, far fewer Krylov columns are needed than the
/// cold-start's `4k + 48` slack: with a full warm set of `k` vectors this
/// uses `k + 2·block + 8` columns; each *missing* warm vector buys four
/// extra columns, so an empty `warm` degrades gracefully to cold-start-like
/// accuracy at cold-start-like cost.
pub fn block_krylov_topk_warm<M: MatVec + ?Sized, R: Rng + ?Sized>(
    a: &M,
    k: usize,
    block: usize,
    warm: &[Vec<f64>],
    rng: &mut R,
) -> Result<SpectrumHead, LinalgError> {
    let n = a.n();
    if n == 0 {
        return Err(LinalgError::EmptyInput("matrix"));
    }
    if k == 0 {
        return Ok(SpectrumHead::default());
    }
    let b = if block == 0 { 8.min(n).max(1) } else { block.min(n) };
    // Seed block: previous Ritz vectors first (they deflate to the residual
    // correction directions after orthogonalization), then fresh Gaussian
    // probes so a stale or empty warm set still explores the full space.
    let mut current: Vec<Vec<f64>> = warm.iter().filter(|v| v.len() == n).cloned().collect();
    let missing = k.saturating_sub(current.len());
    let target_cols = (k + 2 * b + 8 + 4 * missing).min(n);
    current.extend((0..b).map(|_| gaussian_vector(rng, n)));

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(target_cols);
    let mut aq: Vec<Vec<f64>> = Vec::with_capacity(target_cols);

    while basis.len() < target_cols && !current.is_empty() {
        let mut next_block: Vec<Vec<f64>> = Vec::with_capacity(current.len());
        for mut col in current.drain(..) {
            orthogonalize_against(&mut col, &basis);
            orthogonalize_against(&mut col, &basis);
            let nm = normalize(&mut col);
            if nm > DEFLATION_TOL {
                let prod = a.matvec_alloc(&col);
                basis.push(col);
                aq.push(prod.clone());
                next_block.push(prod);
                if basis.len() >= target_cols {
                    break;
                }
            }
        }
        current = next_block;
    }

    if basis.is_empty() {
        return Err(LinalgError::EmptyInput("Krylov basis collapsed"));
    }

    // Rayleigh–Ritz with vectors: T = Qᵀ A Q, eigendecomposed by Jacobi so
    // the eigenvector matrix W is available; Ritz vector j is Q · w_j.
    let m = basis.len();
    let mut t = DenseMatrix::zeros(m);
    for i in 0..m {
        for j in i..m {
            let v: f64 = basis[i].iter().zip(&aq[j]).map(|(x, y)| x * y).sum();
            t.set(i, j, v);
            t.set(j, i, v);
        }
    }
    let (tvals, tvecs) = jacobi_symmetric_eigen(t, 200)?;
    // Ascending → descending; lift the top min(k, m) vectors out of the
    // subspace.
    let mut values: Vec<f64> = tvals.iter().rev().copied().collect();
    values.truncate(k);
    let keep = k.min(m);
    let mut vectors: Vec<Vec<f64>> = Vec::with_capacity(keep);
    for w in tvecs.iter().rev().take(keep) {
        let mut y = vec![0.0; n];
        for (qi, wi) in basis.iter().zip(w) {
            for (yj, qj) in y.iter_mut().zip(qi) {
                *yj += wi * qj;
            }
        }
        vectors.push(y);
    }
    Ok(SpectrumHead { values, vectors })
}

/// Spectral norm `‖A‖₂` of a symmetric matrix (largest |eigenvalue|),
/// estimated with a short reorthogonalized Lanczos run.
pub fn spectral_norm<M: MatVec + ?Sized, R: Rng + ?Sized>(
    a: &M,
    rng: &mut R,
) -> Result<f64, LinalgError> {
    let n = a.n();
    if n == 0 {
        return Err(LinalgError::EmptyInput("matrix"));
    }
    let steps = 40.min(n);
    let v0 = gaussian_vector(rng, n);
    let dec = lanczos_tridiagonalize(a, &v0, steps, false, true)?;
    let ritz = tridiag_eigenvalues(&dec.alphas, &dec.betas)?;
    let lo = ritz.first().copied().unwrap_or(0.0);
    let hi = ritz.last().copied().unwrap_or(0.0);
    Ok(lo.abs().max(hi.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::sparse_symmetric_eigenvalues;
    use crate::sparse::CsrMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn complete_graph(n: usize) -> CsrMatrix {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                edges.push((i, j));
            }
        }
        CsrMatrix::from_undirected_edges(n, &edges)
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        while edges.len() < m {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push((u, v));
            }
        }
        CsrMatrix::from_undirected_edges(n, &edges)
    }

    #[test]
    fn block_krylov_recovers_multiplicities() {
        // K6: eigenvalues 5, then −1 with multiplicity 5.
        let a = complete_graph(6);
        let mut rng = StdRng::seed_from_u64(2);
        let top = block_krylov_topk(&a, 4, 6, &mut rng).unwrap();
        assert!((top[0] - 5.0).abs() < 1e-8);
        for v in &top[1..] {
            assert!((v + 1.0).abs() < 1e-8, "expected -1, got {v}");
        }
    }

    #[test]
    fn block_krylov_matches_exact_on_random_graph() {
        let a = random_graph(60, 150, 77);
        let exact = sparse_symmetric_eigenvalues(&a).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let k = 10;
        let top = block_krylov_topk(&a, k, 8, &mut rng).unwrap();
        for (i, v) in top.iter().enumerate() {
            let want = exact[exact.len() - 1 - i];
            assert!((v - want).abs() < 1e-6, "rank {i}: {v} vs {want}");
        }
    }

    #[test]
    fn lanczos_topk_on_distinct_spectrum() {
        // Path graph has all-distinct eigenvalues.
        let n = 30usize;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let a = CsrMatrix::from_undirected_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(9);
        let top = lanczos_topk(&a, 5, &mut rng).unwrap();
        for (i, v) in top.iter().enumerate() {
            let want = 2.0 * ((i as f64 + 1.0) * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((v - want).abs() < 1e-8, "rank {i}: {v} vs {want}");
        }
    }

    #[test]
    fn topk_descending_order() {
        let a = random_graph(40, 80, 123);
        let mut rng = StdRng::seed_from_u64(8);
        let top = block_krylov_topk(&a, 8, 4, &mut rng).unwrap();
        for w in top.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn warm_start_cold_matches_exact() {
        // Empty warm set: still a valid (cheaper) randomized head.
        let a = random_graph(60, 150, 77);
        let exact = sparse_symmetric_eigenvalues(&a).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let k = 8;
        let head = block_krylov_topk_warm(&a, k, 8, &[], &mut rng).unwrap();
        assert_eq!(head.values.len(), k);
        assert_eq!(head.vectors.len(), k);
        for (i, v) in head.values.iter().enumerate() {
            let want = exact[exact.len() - 1 - i];
            assert!((v - want).abs() < 1e-6, "rank {i}: {v} vs {want}");
        }
    }

    #[test]
    fn warm_start_vectors_are_near_eigenvectors() {
        let a = random_graph(50, 120, 31);
        let mut rng = StdRng::seed_from_u64(12);
        let head = block_krylov_topk_warm(&a, 6, 8, &[], &mut rng).unwrap();
        for (lam, y) in head.values.iter().zip(&head.vectors) {
            let norm: f64 = y.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-8, "Ritz vector norm {norm}");
            let ay = a.matvec_alloc(y);
            let resid: f64 =
                ay.iter().zip(y).map(|(r, yi)| (r - lam * yi).powi(2)).sum::<f64>().sqrt();
            assert!(resid < 1e-5, "residual ‖Ay − λy‖ = {resid} for λ = {lam}");
        }
    }

    #[test]
    fn warm_start_reuses_previous_head() {
        // Second call seeded by the first call's vectors stays accurate on
        // the same matrix (the subspace is already invariant).
        let a = random_graph(60, 150, 55);
        let exact = sparse_symmetric_eigenvalues(&a).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let k = 8;
        let first = block_krylov_topk_warm(&a, k, 8, &[], &mut rng).unwrap();
        let second = block_krylov_topk_warm(&a, k, 8, &first.vectors, &mut rng).unwrap();
        for (i, v) in second.values.iter().enumerate() {
            let want = exact[exact.len() - 1 - i];
            assert!((v - want).abs() < 1e-6, "rank {i}: {v} vs {want}");
        }
    }

    #[test]
    fn warm_start_tolerates_garbage_basis() {
        // Wrong-length and zero warm vectors are ignored / deflated away.
        let a = random_graph(40, 90, 91);
        let mut rng = StdRng::seed_from_u64(3);
        let garbage = vec![vec![0.0; 40], vec![1.0; 13], Vec::new()];
        let head = block_krylov_topk_warm(&a, 5, 4, &garbage, &mut rng).unwrap();
        assert_eq!(head.values.len(), 5);
        for w in head.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn warm_start_k_zero_is_empty() {
        let a = complete_graph(4);
        let mut rng = StdRng::seed_from_u64(1);
        let head = block_krylov_topk_warm(&a, 0, 2, &[], &mut rng).unwrap();
        assert!(head.values.is_empty() && head.vectors.is_empty());
    }

    #[test]
    fn spectral_norm_of_complete_graph() {
        let a = complete_graph(8);
        let mut rng = StdRng::seed_from_u64(6);
        let s = spectral_norm(&a, &mut rng).unwrap();
        assert!((s - 7.0).abs() < 1e-8, "got {s}");
    }

    #[test]
    fn k_zero_returns_empty() {
        let a = complete_graph(4);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(block_krylov_topk(&a, 0, 2, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn empty_matrix_is_error() {
        let a = CsrMatrix::from_undirected_edges(0, &[]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(block_krylov_topk(&a, 3, 2, &mut rng).is_err());
        assert!(spectral_norm(&a, &mut rng).is_err());
    }
}
