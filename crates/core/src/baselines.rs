//! The connectivity-first baseline (paper §7.2.1, Fig. 6).
//!
//! Chan et al. \[22\] maximize natural connectivity by adding `k` *discrete*
//! edges greedily. The paper's point is that those edges do not form a bus
//! route: ordering them with a travelling-salesman pass and stitching the
//! gaps with road shortest paths yields a "route" dominated by connector
//! mileage. [`connectivity_first_edges`] reproduces the greedy selection and
//! [`stitch_edges_into_route`] quantifies the stitching overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

use ct_data::City;
use ct_graph::shortest_path;
use ct_linalg::{CsrMatrix, EdgeOverlay, LanczosWorkspace};
use serde::{Deserialize, Serialize};

use crate::candidates::CandidateSet;
use crate::precompute::Precomputed;

/// Greedily selects `l` candidate edges maximizing the marginal natural
/// connectivity gain (the \[22\] baseline), using all available cores.
///
/// Marginal gains are re-estimated after every pick with the shared
/// paired-probe estimator. To keep the cubic-ish greedy tractable the
/// search is restricted to the `pool_size` candidates with the largest
/// individual Δ(e) — the greedy's picks always live in that head, so this
/// pruning does not change results in practice (DESIGN.md §3).
pub fn connectivity_first_edges(pre: &Precomputed, l: usize, pool_size: usize) -> Vec<u32> {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    connectivity_first_edges_with_threads(pre, l, pool_size, threads)
}

/// [`connectivity_first_edges`] with an explicit worker count.
///
/// Each greedy round scans the pool in parallel: workers pull pool
/// positions off an atomic work-stealing counter and score each candidate
/// through a thread-local overlay of the round's matrix plus a
/// [`LanczosWorkspace`] (no per-candidate CSR rebuild; bit-identical to
/// materializing). Every gain is a pure function of the frozen probes, and
/// the round's argmax resolves ties toward the lower pool position — the
/// same winner a sequential scan picks — so the selection is invariant
/// under the worker count (enforced by tests).
pub fn connectivity_first_edges_with_threads(
    pre: &Precomputed,
    l: usize,
    pool_size: usize,
    threads: usize,
) -> Vec<u32> {
    let pool: Vec<u32> = pre
        .llambda
        .iter_desc()
        .filter(|&id| !pre.candidates.edge(id).existing)
        .take(pool_size.max(l * 4))
        .collect();
    let mut chosen: Vec<u32> = Vec::with_capacity(l);
    let mut current: CsrMatrix = pre.base_adj.clone();
    let mut current_trace = pre.base_trace;
    let threads = threads.clamp(1, pool.len().max(1));

    for _ in 0..l {
        // One shared work-stealing cursor per round; each worker owns its
        // overlay + workspace and reports its local best.
        let next = AtomicUsize::new(0);
        let partials: Vec<Option<(usize, u32, f64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (next, current, pool, chosen) = (&next, &current, &pool, &chosen);
                    s.spawn(move || {
                        let mut ws = LanczosWorkspace::new();
                        let mut overlay = EdgeOverlay::empty(current);
                        round_argmax(
                            pre,
                            pool,
                            chosen,
                            current_trace,
                            &mut overlay,
                            &mut ws,
                            || next.fetch_add(1, Ordering::Relaxed),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("greedy worker does not panic")).collect()
        });
        // Deterministic reduction: max gain, ties to lower pool position —
        // the same winner a sequential first-wins scan picks.
        let best = partials.into_iter().flatten().reduce(|a, b| {
            if b.2 > a.2 || (b.2 == a.2 && b.0 < a.0) {
                b
            } else {
                a
            }
        });
        let Some((_, id, _)) = best else { break };
        let e = pre.candidates.edge(id);
        chosen.push(id);
        current = current.with_added_unit_edges(&[(e.u, e.v)]);
        current_trace =
            pre.estimator.trace_exp(&current).unwrap_or(current_trace).max(f64::MIN_POSITIVE);
    }
    chosen
}

/// Scans the pool positions delivered by `next_pos` (a shared atomic
/// cursor) and returns this worker's best `(pool position, candidate id,
/// gain)` — strict-greater comparison, so the reduction's lower-position
/// tie-break reproduces a sequential first-wins scan exactly.
#[allow(clippy::too_many_arguments)]
fn round_argmax(
    pre: &Precomputed,
    pool: &[u32],
    chosen: &[u32],
    current_trace: f64,
    overlay: &mut EdgeOverlay<'_>,
    ws: &mut LanczosWorkspace,
    mut next_pos: impl FnMut() -> usize,
) -> Option<(usize, u32, f64)> {
    let mut best: Option<(usize, u32, f64)> = None;
    loop {
        let pos = next_pos();
        let Some(&id) = pool.get(pos) else { break };
        if chosen.contains(&id) {
            continue;
        }
        let e = pre.candidates.edge(id);
        overlay.set_edges(&[(e.u, e.v)]);
        let Ok(tr) = pre.estimator.trace_exp_in(overlay, ws) else { continue };
        let gain = (tr.max(f64::MIN_POSITIVE) / current_trace).ln();
        if best.is_none_or(|(_, _, g)| gain > g) {
            best = Some((pos, id, gain));
        }
    }
    best
}

/// A set of discrete edges forced into a single route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StitchedRoute {
    /// Candidate ids in visiting order (nearest-neighbor TSP).
    pub order: Vec<u32>,
    /// Total length of the selected edges themselves, meters.
    pub edge_length_m: f64,
    /// Total length of the road connectors between consecutive edges.
    pub connector_length_m: f64,
    /// `connector / edge` mileage; large values mean the edges are
    /// "hard to be connected as a smooth bus route" (paper Fig. 6).
    pub overhead_ratio: f64,
    /// Per-gap connector lengths in visiting order, meters.
    pub connector_lengths: Vec<f64>,
    /// Edge pairs that could not be connected at all.
    pub unconnected_gaps: usize,
}

impl StitchedRoute {
    /// Connector hops longer than `tau_m`: each such hop violates the
    /// consecutive-stop spacing constraint, so the stitched sequence is not
    /// a feasible CT-Bus route (the quantitative form of Fig. 6's claim).
    pub fn gaps_violating_tau(&self, tau_m: f64) -> usize {
        self.connector_lengths.iter().filter(|&&d| d > tau_m).count()
    }
}

/// Orders edges by nearest-neighbor TSP on their midpoints and connects
/// consecutive edges with road shortest paths.
pub fn stitch_edges_into_route(
    city: &City,
    cands: &CandidateSet,
    edge_ids: &[u32],
) -> StitchedRoute {
    let transit = &city.transit;
    let mid = |id: u32| {
        let e = cands.edge(id);
        transit.stop(e.u).pos.midpoint(&transit.stop(e.v).pos)
    };

    // Nearest-neighbor order starting from the first edge.
    let mut remaining: Vec<u32> = edge_ids.to_vec();
    let mut order = Vec::with_capacity(remaining.len());
    if !remaining.is_empty() {
        order.push(remaining.remove(0));
        while !remaining.is_empty() {
            let cur = mid(*order.last().unwrap());
            let (best_idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &id)| (i, cur.dist(&mid(id))))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
                .expect("remaining is non-empty");
            order.push(remaining.remove(best_idx));
        }
    }

    let edge_length_m: f64 = order.iter().map(|&id| cands.edge(id).length_m).sum();
    let mut connector_length_m = 0.0;
    let mut connector_lengths = Vec::new();
    let mut unconnected_gaps = 0usize;
    for w in order.windows(2) {
        let a = cands.edge(w[0]);
        let b = cands.edge(w[1]);
        // Connect the closest pair of endpoints via the road network.
        let mut best: Option<f64> = None;
        for &sa in &[a.u, a.v] {
            for &sb in &[b.u, b.v] {
                let na = transit.stop(sa).road_node;
                let nb = transit.stop(sb).road_node;
                if na == nb {
                    best = Some(0.0);
                    continue;
                }
                if let Some(p) = shortest_path(&city.road, na, nb) {
                    if best.is_none_or(|d| p.dist < d) {
                        best = Some(p.dist);
                    }
                }
            }
        }
        match best {
            Some(d) => {
                connector_length_m += d;
                connector_lengths.push(d);
            }
            None => unconnected_gaps += 1,
        }
    }
    let overhead_ratio = if edge_length_m > 0.0 { connector_length_m / edge_length_m } else { 0.0 };
    StitchedRoute {
        order,
        edge_length_m,
        connector_length_m,
        overhead_ratio,
        connector_lengths,
        unconnected_gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CtBusParams;
    use crate::precompute::Precomputed;
    use ct_data::{CityConfig, DemandModel};

    fn setup() -> (City, Precomputed) {
        let city = CityConfig::small().seed(44).generate();
        let demand = DemandModel::from_city(&city);
        let params = CtBusParams::small_defaults();
        let pre = Precomputed::build(&city, &demand, &params);
        (city, pre)
    }

    #[test]
    fn greedy_picks_distinct_new_edges() {
        let (_, pre) = setup();
        let picks = connectivity_first_edges(&pre, 5, 50);
        assert_eq!(picks.len(), 5);
        let mut dedup = picks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5, "greedy repeated an edge");
        for &id in &picks {
            assert!(!pre.candidates.edge(id).existing);
        }
    }

    #[test]
    fn greedy_first_pick_has_top_marginal_gain() {
        // With no edges chosen yet, the first greedy pick must be the
        // candidate with the single largest Δ(e).
        let (_, pre) = setup();
        let picks = connectivity_first_edges(&pre, 1, 50);
        let top_new =
            pre.llambda.iter_desc().find(|&id| !pre.candidates.edge(id).existing).unwrap();
        assert_eq!(picks[0], top_new);
    }

    #[test]
    fn greedy_invariant_under_thread_count() {
        // Every marginal gain is a pure function of the frozen probes and
        // the round's matrix, and the reduction tie-breaks to the lower
        // pool position, so the picks cannot depend on the worker count.
        let (_, pre) = setup();
        let reference = connectivity_first_edges_with_threads(&pre, 4, 40, 1);
        for threads in [2, 5] {
            let parallel = connectivity_first_edges_with_threads(&pre, 4, 40, threads);
            assert_eq!(parallel, reference, "threads={threads}");
        }
    }

    #[test]
    fn stitched_route_reports_overhead() {
        // Structural checks only: the paper's "connector mileage dominates"
        // claim (Fig. 6) is a city-scale phenomenon and is asserted by the
        // fig6 experiment, not at toy scale.
        let (city, pre) = setup();
        let picks = connectivity_first_edges(&pre, 6, 60);
        let stitched = stitch_edges_into_route(&city, &pre.candidates, &picks);
        assert_eq!(stitched.order.len(), 6);
        assert!(stitched.edge_length_m > 0.0);
        assert!(stitched.overhead_ratio >= 0.0);
        assert!(stitched.connector_length_m > 0.0, "6 discrete edges need connectors");
        // The order is a permutation of the picks.
        let mut sorted = stitched.order.clone();
        sorted.sort_unstable();
        let mut picks_sorted = picks.clone();
        picks_sorted.sort_unstable();
        assert_eq!(sorted, picks_sorted);
    }

    #[test]
    fn stitching_empty_and_single() {
        let (city, pre) = setup();
        let empty = stitch_edges_into_route(&city, &pre.candidates, &[]);
        assert_eq!(empty.order.len(), 0);
        assert_eq!(empty.overhead_ratio, 0.0);
        let single = stitch_edges_into_route(&city, &pre.candidates, &[0]);
        assert_eq!(single.order.len(), 1);
        assert_eq!(single.connector_length_m, 0.0);
    }
}
