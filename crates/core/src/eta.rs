//! The Expansion-based Traversal Algorithm (paper Algorithm 1) and its
//! variants.
//!
//! Candidate paths live in a max-priority queue keyed by their objective
//! upper bound `O↑`. Each iteration polls the most promising path, extends
//! it at both ends (best-neighbor by default, all-neighbors in the ETA-AN
//! ablation), verifies feasibility (circle-free, turn budget, length ≤ k),
//! updates the incumbent, and re-inserts survivors after the Algorithm 2
//! incremental bound update and domination check.
//!
//! Variants (paper §7):
//!
//! | mode               | conn scoring  | neighbors | domination | seeding |
//! |--------------------|---------------|-----------|------------|---------|
//! | `Eta`              | online SLQ    | best      | yes        | top-sn  |
//! | `EtaPre`           | linear Δ(e)   | best      | yes        | top-sn  |
//! | `EtaAll`           | linear Δ(e)   | best      | yes        | all     |
//! | `EtaAllNeighbors`  | linear Δ(e)   | all       | yes        | top-sn  |
//! | `EtaNoDomination`  | linear Δ(e)   | best      | no         | top-sn  |
//! | `VkTsp`            | (w = 1)       | best      | yes        | top-sn, new edges only |
//!
//! Deviations from the pseudo-code, documented here and in DESIGN.md:
//! deflections sharper than π/2 reject the extension outright (the paper
//! saturates the turn counter, which keeps the kinked path as a result;
//! rejecting is strictly cleaner for route quality), and one-way loops are
//! not closed (strict simple paths).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use ct_data::{City, DemandModel};
use ct_spatial::{turn_angle, TurnClass};
use serde::{Deserialize, Serialize};

use crate::params::CtBusParams;
use crate::plan::RoutePlan;
use crate::precompute::Precomputed;
use crate::ranked::{IncrementalBound, RankedList};
use crate::scorer::ConnScorer;

/// Which planner variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMode {
    /// Online connectivity estimation (paper "ETA").
    Eta,
    /// Pre-computed linear connectivity (paper "ETA-Pre").
    EtaPre,
    /// ETA-Pre seeded with *all* candidates (paper "ETA-ALL").
    EtaAll,
    /// ETA-Pre expanding with all neighbors instead of best (paper "ETA-AN").
    EtaAllNeighbors,
    /// ETA-Pre without the domination table (paper "ETA-DT").
    EtaNoDomination,
    /// Demand-first baseline: `w = 1`, new edges only (paper "vk-TSP").
    VkTsp,
}

#[derive(Debug, Clone, Copy)]
struct ModeConfig {
    online_scoring: bool,
    all_neighbors: bool,
    domination: bool,
    seed_all: bool,
    new_edges_only: bool,
    w_override: Option<f64>,
}

impl PlannerMode {
    fn config(self) -> ModeConfig {
        let base = ModeConfig {
            online_scoring: false,
            all_neighbors: false,
            domination: true,
            seed_all: false,
            new_edges_only: false,
            w_override: None,
        };
        match self {
            PlannerMode::Eta => ModeConfig { online_scoring: true, ..base },
            PlannerMode::EtaPre => base,
            PlannerMode::EtaAll => ModeConfig { seed_all: true, ..base },
            PlannerMode::EtaAllNeighbors => ModeConfig { all_neighbors: true, ..base },
            PlannerMode::EtaNoDomination => ModeConfig { domination: false, ..base },
            PlannerMode::VkTsp => {
                ModeConfig { new_edges_only: true, w_override: Some(1.0), ..base }
            }
        }
    }
}

/// Outcome of one planner run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The best route found (empty if no feasible route exists).
    pub best: RoutePlan,
    /// Convergence trace: `(iteration, best objective so far)`, recorded
    /// every `record_every` iterations (paper Figs. 9–12).
    pub trace: Vec<(u64, f64)>,
    /// Queue polls performed.
    pub iterations: u64,
    /// Wall-clock seconds.
    pub runtime_secs: f64,
    /// Candidate-path objective evaluations performed.
    pub evaluations: u64,
}

#[derive(Debug, Clone)]
struct CandPath {
    stops: Vec<u32>,
    edges: Vec<u32>,
    demand_sum: f64,
    /// Objective value; for linear scoring this is the running `Σ L_e[e]`,
    /// for online scoring the latest full evaluation.
    obj: f64,
    tn: u32,
    bound: IncrementalBound,
    ub: f64,
}

impl CandPath {
    fn front_stop(&self) -> u32 {
        self.stops[0]
    }

    fn back_stop(&self) -> u32 {
        *self.stops.last().expect("paths are never empty")
    }

    fn contains_stop(&self, s: u32) -> bool {
        self.stops.contains(&s)
    }

    fn contains_edge(&self, e: u32) -> bool {
        self.edges.contains(&e)
    }

    fn dt_key(&self) -> (u32, u32) {
        let first = self.edges[0];
        let last = *self.edges.last().expect("paths are never empty");
        (first.min(last), first.max(last))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    Front,
    Back,
}

struct QEntry {
    ub: f64,
    seq: u64,
    path: CandPath,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.ub == other.ub && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on ub; FIFO on ties for determinism.
        self.ub
            .partial_cmp(&other.ub)
            .expect("bounds are not NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The CT-Bus planner: pre-computation plus Algorithm 1 in all variants.
pub struct Planner<'a> {
    city: &'a City,
    params: CtBusParams,
    pre: Precomputed,
}

impl<'a> Planner<'a> {
    /// Builds a planner, running the full pre-computation stage.
    pub fn new(city: &'a City, demand: &DemandModel, params: CtBusParams) -> Self {
        assert!(params.validate().is_empty(), "invalid params: {:?}", params.validate());
        let pre = Precomputed::build(city, demand, &params);
        Planner { city, params, pre }
    }

    /// Builds a planner around an existing pre-computation.
    pub fn with_precomputed(city: &'a City, params: CtBusParams, pre: Precomputed) -> Self {
        Planner { city, params, pre }
    }

    /// The pre-computation artifacts.
    pub fn precomputed(&self) -> &Precomputed {
        &self.pre
    }

    /// The parameters in force.
    pub fn params(&self) -> &CtBusParams {
        &self.params
    }

    /// Runs Algorithm 1 in the requested variant.
    pub fn run(&self, mode: PlannerMode) -> RunResult {
        let t0 = Instant::now();
        let cfg = mode.config();
        let w = cfg.w_override.unwrap_or(self.params.w);
        let k = self.params.k;
        let cands = &self.pre.candidates;
        let evaluations = std::cell::Cell::new(0u64);

        let scorer = if cfg.online_scoring {
            ConnScorer::online(&self.pre.estimator, &self.pre.base_adj, self.pre.base_trace)
        } else {
            ConnScorer::Linear { delta: &self.pre.delta }
        };

        // Per-run ranked list: L_d for online bounds, L_e(w) for linear.
        let le_values: Vec<f64> = if cfg.online_scoring {
            Vec::new()
        } else {
            cands
                .edges()
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    w * e.demand / self.pre.d_max
                        + (1.0 - w) * self.pre.delta[i] / self.pre.lambda_max
                })
                .collect()
        };
        let le_list = (!cfg.online_scoring).then(|| RankedList::new(&le_values));
        let bound_list: &RankedList = le_list.as_ref().unwrap_or(&self.pre.ld);

        let ub_of = |bound: &IncrementalBound| -> f64 {
            if cfg.online_scoring {
                w * bound.ub / self.pre.d_max
                    + (1.0 - w) * self.pre.conn_path_ub / self.pre.lambda_max
            } else {
                bound.ub
            }
        };

        // Candidate admissibility under the mode.
        let admissible = |id: u32| -> bool { !cfg.new_edges_only || !cands.edge(id).existing };

        // Path objective evaluation. Linear paths carry their objective
        // incrementally; online paths are re-estimated in full.
        let eval_full = |edges: &[u32], demand_sum: f64| -> f64 {
            evaluations.set(evaluations.get() + 1);
            if cfg.online_scoring {
                w * demand_sum / self.pre.d_max
                    + (1.0 - w) * scorer.increment(edges, cands) / self.pre.lambda_max
            } else {
                edges.iter().map(|&e| le_values[e as usize]).sum()
            }
        };

        // ---- Initialization (Algorithm 1 lines 19–27). ----
        let seed_ids: Vec<u32> = if cfg.seed_all {
            (0..cands.len() as u32).filter(|&id| admissible(id)).collect()
        } else {
            bound_list.iter_desc().filter(|&id| admissible(id)).take(self.params.sn).collect()
        };

        let mut o_max = f64::NEG_INFINITY;
        let mut best: Option<CandPath> = None;
        let mut q: BinaryHeap<QEntry> = BinaryHeap::new();
        let mut seq = 0u64;
        for &id in &seed_ids {
            let e = cands.edge(id);
            let obj = eval_full(&[id], e.demand);
            let bound = IncrementalBound::for_seed(bound_list, k, id);
            let path = CandPath {
                stops: vec![e.u, e.v],
                edges: vec![id],
                demand_sum: e.demand,
                obj,
                tn: 0,
                bound,
                ub: 0.0,
            };
            let mut path = path;
            path.ub = ub_of(&path.bound);
            if obj > o_max {
                o_max = obj;
                best = Some(path.clone());
            }
            q.push(QEntry { ub: path.ub, seq, path });
            seq += 1;
        }

        // ---- Main loop (lines 3–16). ----
        let mut dt: HashMap<(u32, u32), f64> = HashMap::new();
        let mut it = 0u64;
        let mut trace: Vec<(u64, f64)> = vec![(0, o_max.max(0.0))];

        while let Some(entry) = q.pop() {
            if entry.ub <= o_max || it >= self.params.it_max {
                break;
            }
            it += 1;
            if it.is_multiple_of(self.params.record_every) {
                trace.push((it, o_max));
            }
            let cp = entry.path;

            if cfg.all_neighbors {
                // ETA-AN: enqueue every feasible single-edge extension.
                for end in [End::Front, End::Back] {
                    let anchor = match end {
                        End::Front => cp.front_stop(),
                        End::Back => cp.back_stop(),
                    };
                    for &e_id in cands.incident(anchor) {
                        if !admissible(e_id) {
                            continue;
                        }
                        let mut p = cp.clone();
                        if !self.try_append(
                            &mut p,
                            e_id,
                            end,
                            bound_list,
                            cfg.online_scoring,
                            &le_values,
                        ) {
                            continue;
                        }
                        if cfg.online_scoring {
                            p.obj = eval_full(&p.edges, p.demand_sum);
                        } else {
                            evaluations.set(evaluations.get() + 1);
                        }
                        p.ub = ub_of(&p.bound);
                        if p.obj > o_max {
                            o_max = p.obj;
                            best = Some(p.clone());
                        }
                        self.further_expansion(
                            p,
                            o_max,
                            &mut dt,
                            &mut q,
                            &mut seq,
                            cfg.domination,
                            k,
                        );
                    }
                }
            } else {
                // Best-neighbor: pick the best feasible extension at each end
                // (lines 8–12), then cp ← be + cp + ee (line 13).
                let mut newp = cp.clone();
                let mut extended = false;
                for end in [End::Front, End::Back] {
                    let anchor = match end {
                        End::Front => newp.front_stop(),
                        End::Back => newp.back_stop(),
                    };
                    let mut best_ext: Option<(u32, f64)> = None;
                    for &e_id in cands.incident(anchor) {
                        if !admissible(e_id) {
                            continue;
                        }
                        if !self.extension_feasible(&newp, e_id, end) {
                            continue;
                        }
                        let score = if cfg.online_scoring {
                            let mut edges = newp.edges.clone();
                            match end {
                                End::Front => edges.insert(0, e_id),
                                End::Back => edges.push(e_id),
                            }
                            eval_full(&edges, newp.demand_sum + cands.edge(e_id).demand)
                        } else {
                            evaluations.set(evaluations.get() + 1);
                            newp.obj + le_values[e_id as usize]
                        };
                        if best_ext.is_none_or(|(_, s)| score > s) {
                            best_ext = Some((e_id, score));
                        }
                    }
                    if let Some((e_id, _)) = best_ext {
                        if self.try_append(
                            &mut newp,
                            e_id,
                            end,
                            bound_list,
                            cfg.online_scoring,
                            &le_values,
                        ) {
                            extended = true;
                        }
                    }
                }
                if !extended {
                    continue;
                }
                if cfg.online_scoring {
                    newp.obj = eval_full(&newp.edges, newp.demand_sum);
                }
                newp.ub = ub_of(&newp.bound);
                if newp.obj > o_max {
                    o_max = newp.obj;
                    best = Some(newp.clone());
                }
                self.further_expansion(newp, o_max, &mut dt, &mut q, &mut seq, cfg.domination, k);
            }
        }
        trace.push((it, o_max.max(0.0)));

        // Report the objective under the *configured* weight, even when the
        // search used an override (vk-TSP searches with w = 1 but Table 6
        // compares all methods under the shared objective).
        let best_plan = match best {
            Some(cp) => self.plan_from(&cp, self.params.w),
            None => RoutePlan::empty(),
        };
        RunResult {
            best: best_plan,
            trace,
            iterations: it,
            runtime_secs: t0.elapsed().as_secs_f64(),
            evaluations: evaluations.get(),
        }
    }

    /// Feasibility of appending candidate `e_id` at `end` (circle-free,
    /// length, turn checks) without mutating the path.
    fn extension_feasible(&self, path: &CandPath, e_id: u32, end: End) -> bool {
        if path.edges.len() >= self.params.k || path.contains_edge(e_id) {
            return false;
        }
        let e = self.pre.candidates.edge(e_id);
        let anchor = match end {
            End::Front => path.front_stop(),
            End::Back => path.back_stop(),
        };
        if e.u != anchor && e.v != anchor {
            return false;
        }
        let far = e.other(anchor);
        if path.contains_stop(far) {
            return false;
        }
        match self.turn_class_at(path, far, end) {
            TurnClass::Sharp => false,
            TurnClass::Turn => path.tn < self.params.tn_max,
            TurnClass::Straight => true,
        }
    }

    fn turn_class_at(&self, path: &CandPath, far: u32, end: End) -> TurnClass {
        if path.stops.len() < 2 {
            return TurnClass::Straight;
        }
        let transit = &self.city.transit;
        let pos = |s: u32| transit.stop(s).pos;
        let angle = match end {
            End::Back => {
                let n = path.stops.len();
                turn_angle(&pos(path.stops[n - 2]), &pos(path.stops[n - 1]), &pos(far))
            }
            End::Front => turn_angle(&pos(far), &pos(path.stops[0]), &pos(path.stops[1])),
        };
        TurnClass::from_angle(angle)
    }

    /// Appends `e_id` to `path` at `end`; returns false (path unchanged in
    /// any meaningful way) if the extension is infeasible.
    fn try_append(
        &self,
        path: &mut CandPath,
        e_id: u32,
        end: End,
        bound_list: &RankedList,
        online: bool,
        le_values: &[f64],
    ) -> bool {
        if !self.extension_feasible(path, e_id, end) {
            return false;
        }
        let e = self.pre.candidates.edge(e_id);
        let anchor = match end {
            End::Front => path.front_stop(),
            End::Back => path.back_stop(),
        };
        let far = e.other(anchor);
        if self.turn_class_at(path, far, end) == TurnClass::Turn {
            path.tn += 1;
        }
        match end {
            End::Front => {
                path.stops.insert(0, far);
                path.edges.insert(0, e_id);
            }
            End::Back => {
                path.stops.push(far);
                path.edges.push(e_id);
            }
        }
        path.demand_sum += e.demand;
        if !online {
            path.obj += le_values[e_id as usize];
        }
        path.bound.append(bound_list, e_id);
        true
    }

    /// Lines 29–34: bound/turn/length gates, domination table, enqueue.
    #[allow(clippy::too_many_arguments)]
    fn further_expansion(
        &self,
        path: CandPath,
        o_max: f64,
        dt: &mut HashMap<(u32, u32), f64>,
        q: &mut BinaryHeap<QEntry>,
        seq: &mut u64,
        domination: bool,
        k: usize,
    ) {
        if path.tn >= self.params.tn_max || path.edges.len() >= k || path.ub <= o_max {
            return;
        }
        if domination {
            let key = path.dt_key();
            let entry = dt.entry(key).or_insert(f64::NEG_INFINITY);
            if path.obj <= *entry {
                return;
            }
            *entry = path.obj;
        }
        q.push(QEntry { ub: path.ub, seq: *seq, path });
        *seq += 1;
    }

    /// Converts the winning path into a reported plan, re-scoring its
    /// connectivity with the SLQ estimator (the paper does the same for
    /// ETA-Pre's final answer, Fig. 9).
    fn plan_from(&self, cp: &CandPath, w: f64) -> RoutePlan {
        let cands = &self.pre.candidates;
        let online =
            ConnScorer::online(&self.pre.estimator, &self.pre.base_adj, self.pre.base_trace);
        let conn = online.increment(&cp.edges, cands);
        let demand = cp.demand_sum;
        let objective = self.pre.objective(w, demand, conn);
        let length_m = cp.edges.iter().map(|&e| cands.edge(e).length_m).sum();
        RoutePlan {
            stops: cp.stops.clone(),
            cand_edges: cp.edges.clone(),
            new_stop_pairs: cands.new_stop_pairs(&cp.edges),
            demand,
            conn_increment: conn,
            objective,
            turns: cp.tn,
            length_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_data::CityConfig;

    fn planner_fixture() -> (City, DemandModel, CtBusParams) {
        let city = CityConfig::small().seed(21).generate();
        let demand = DemandModel::from_city(&city);
        let params = CtBusParams::small_defaults();
        (city, demand, params)
    }

    fn check_plan_feasible(city: &City, params: &CtBusParams, plan: &RoutePlan) {
        assert!(!plan.is_empty(), "no route found");
        assert!(plan.num_edges() <= params.k, "too many edges");
        assert_eq!(plan.stops.len(), plan.num_edges() + 1);
        assert!(plan.turns <= params.tn_max);
        // Circle-free: no repeated stops.
        let mut sorted = plan.stops.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), plan.stops.len(), "repeated stop");
        // New pairs must be absent from the base network.
        for &(u, v) in &plan.new_stop_pairs {
            assert!(city.transit.edge_between(u, v).is_none());
        }
    }

    #[test]
    fn eta_pre_finds_feasible_route() {
        let (city, demand, params) = planner_fixture();
        let planner = Planner::new(&city, &demand, params);
        let res = planner.run(PlannerMode::EtaPre);
        check_plan_feasible(&city, &params, &res.best);
        assert!(res.best.objective > 0.0);
        assert!(res.best.conn_increment > 0.0, "route should add connectivity");
        assert!(res.iterations > 0);
    }

    #[test]
    fn eta_online_finds_feasible_route() {
        let (city, demand, mut params) = planner_fixture();
        params.sn = 40; // online scoring is expensive; keep the test fast
        params.it_max = 150;
        let planner = Planner::new(&city, &demand, params);
        let res = planner.run(PlannerMode::Eta);
        check_plan_feasible(&city, &params, &res.best);
    }

    #[test]
    fn eta_pre_objective_comparable_to_online() {
        // Paper Table 6 / Fig. 9: ETA-Pre reaches objective values similar
        // to online ETA.
        let (city, demand, mut params) = planner_fixture();
        params.sn = 40;
        params.it_max = 150;
        let planner = Planner::new(&city, &demand, params);
        let pre = planner.run(PlannerMode::EtaPre);
        let online = planner.run(PlannerMode::Eta);
        assert!(
            pre.best.objective >= 0.5 * online.best.objective,
            "pre {} vs online {}",
            pre.best.objective,
            online.best.objective
        );
    }

    #[test]
    fn vk_tsp_uses_only_new_edges() {
        let (city, demand, params) = planner_fixture();
        let planner = Planner::new(&city, &demand, params);
        let res = planner.run(PlannerMode::VkTsp);
        check_plan_feasible(&city, &params, &res.best);
        assert_eq!(
            res.best.num_new_edges(),
            res.best.num_edges(),
            "vk-TSP must only add new edges"
        );
    }

    #[test]
    fn vk_tsp_has_lower_connectivity_than_eta_pre() {
        // The paper's headline effectiveness claim (Table 6): demand-only
        // planning yields smaller connectivity increments.
        let (city, demand, params) = planner_fixture();
        let planner = Planner::new(&city, &demand, params);
        let pre = planner.run(PlannerMode::EtaPre);
        let vk = planner.run(PlannerMode::VkTsp);
        assert!(
            pre.best.conn_increment >= vk.best.conn_increment * 0.8,
            "ETA-Pre conn {} unexpectedly below vk-TSP {}",
            pre.best.conn_increment,
            vk.best.conn_increment
        );
    }

    #[test]
    fn trace_is_monotone_nondecreasing() {
        let (city, demand, params) = planner_fixture();
        let planner = Planner::new(&city, &demand, params);
        let res = planner.run(PlannerMode::EtaPre);
        for w in res.trace.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "objective regressed in trace");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let (city, demand, params) = planner_fixture();
        let planner = Planner::new(&city, &demand, params);
        let a = planner.run(PlannerMode::EtaPre);
        let b = planner.run(PlannerMode::EtaPre);
        assert_eq!(a.best, b.best);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn ablations_complete_and_stay_feasible() {
        let (city, demand, mut params) = planner_fixture();
        params.it_max = 1_000;
        let planner = Planner::new(&city, &demand, params);
        for mode in
            [PlannerMode::EtaAll, PlannerMode::EtaAllNeighbors, PlannerMode::EtaNoDomination]
        {
            let res = planner.run(mode);
            check_plan_feasible(&city, &params, &res.best);
        }
    }

    #[test]
    fn larger_k_does_not_reduce_raw_demand() {
        let (city, demand, mut params) = planner_fixture();
        params.k = 4;
        let p4 = Planner::new(&city, &demand, params).run(PlannerMode::EtaPre);
        params.k = 10;
        let p10 = Planner::new(&city, &demand, params).run(PlannerMode::EtaPre);
        assert!(
            p10.best.demand >= p4.best.demand * 0.9,
            "k=10 demand {} << k=4 demand {}",
            p10.best.demand,
            p4.best.demand
        );
    }

    #[test]
    fn w_zero_and_one_extremes() {
        let (city, demand, mut params) = planner_fixture();
        params.w = 0.0;
        let conn_first = Planner::new(&city, &demand, params).run(PlannerMode::EtaPre);
        params.w = 1.0;
        let demand_first = Planner::new(&city, &demand, params).run(PlannerMode::EtaPre);
        check_plan_feasible(&city, &params, &conn_first.best);
        check_plan_feasible(&city, &params, &demand_first.best);
        assert!(
            demand_first.best.demand >= conn_first.best.demand,
            "w=1 should meet at least as much demand as w=0"
        );
    }
}
