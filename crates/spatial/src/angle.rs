//! Heading and turn-angle computation.
//!
//! The paper's feasibility rules (Algorithm 2) classify the angle between
//! consecutive route edges: a deflection greater than `π/4` counts as a turn,
//! and greater than `π/2` disqualifies the candidate path outright (the turn
//! counter is slammed to `Tn`). These thresholds are exposed as constants so
//! planners and tests share one source of truth.

use crate::point::Point;

/// Deflection above which an edge junction counts as a turn (`π/4`).
pub const TURN_THRESHOLD_ANGLE: f64 = std::f64::consts::FRAC_PI_4;

/// Deflection above which a candidate is disqualified (`π/2`).
pub const TURN_KILL_ANGLE: f64 = std::f64::consts::FRAC_PI_2;

/// Classification of the deflection at a junction of two consecutive edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnClass {
    /// Deflection ≤ π/4: not a turn.
    Straight,
    /// π/4 < deflection ≤ π/2: one turn.
    Turn,
    /// Deflection > π/2: the path doubles back too sharply and is infeasible.
    Sharp,
}

impl TurnClass {
    /// Classifies a deflection angle in radians (0 = perfectly straight).
    pub fn from_angle(angle: f64) -> TurnClass {
        if angle > TURN_KILL_ANGLE {
            TurnClass::Sharp
        } else if angle > TURN_THRESHOLD_ANGLE {
            TurnClass::Turn
        } else {
            TurnClass::Straight
        }
    }
}

/// Heading of the segment `a → b` in radians in `(-π, π]`, measured from +x.
pub fn heading(a: &Point, b: &Point) -> f64 {
    (b.y - a.y).atan2(b.x - a.x)
}

/// Deflection angle at `mid` when travelling `prev → mid → next`, in `[0, π]`.
///
/// Zero means continuing dead straight; `π` means a full U-turn. Degenerate
/// zero-length segments deflect by 0 (they cannot witness a turn).
pub fn turn_angle(prev: &Point, mid: &Point, next: &Point) -> f64 {
    let (ux, uy) = prev.delta(mid);
    let (vx, vy) = mid.delta(next);
    let nu = ux.hypot(uy);
    let nv = vx.hypot(vy);
    if nu == 0.0 || nv == 0.0 {
        return 0.0;
    }
    let cos = ((ux * vx + uy * vy) / (nu * nv)).clamp(-1.0, 1.0);
    cos.acos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn straight_line_has_zero_turn() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(2.0, 0.0);
        assert!(turn_angle(&a, &b, &c).abs() < 1e-12);
    }

    #[test]
    fn right_angle_turn() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(1.0, 1.0);
        assert!((turn_angle(&a, &b, &c) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn u_turn_is_pi() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 0.0);
        assert!((turn_angle(&a, &b, &c) - PI).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_is_straight() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(turn_angle(&a, &a, &a), 0.0);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(TurnClass::from_angle(0.1), TurnClass::Straight);
        assert_eq!(TurnClass::from_angle(TURN_THRESHOLD_ANGLE), TurnClass::Straight);
        assert_eq!(TurnClass::from_angle(1.0), TurnClass::Turn);
        assert_eq!(TurnClass::from_angle(TURN_KILL_ANGLE), TurnClass::Turn);
        assert_eq!(TurnClass::from_angle(2.0), TurnClass::Sharp);
    }

    #[test]
    fn heading_cardinal_directions() {
        let o = Point::new(0.0, 0.0);
        assert!((heading(&o, &Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((heading(&o, &Point::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((heading(&o, &Point::new(-1.0, 0.0)) - PI).abs() < 1e-12);
    }

    #[test]
    fn shallow_bend_is_straight_class() {
        // 30° deflection: below the π/4 turn threshold.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(1.0 + 0.866, 0.5);
        let ang = turn_angle(&a, &b, &c);
        assert_eq!(TurnClass::from_angle(ang), TurnClass::Straight);
    }
}
