//! Compressed sparse row (CSR) symmetric matrices.
//!
//! Transit-network adjacency matrices are sparse (average degree ≈ 2), so
//! every Lanczos iteration is a single `O(nnz)` [`CsrMatrix::matvec`]. Both
//! triangles are stored explicitly, which keeps `matvec` branch-free.

use crate::dense::DenseMatrix;

/// A sparse symmetric matrix in CSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds the 0/1 adjacency matrix of a simple undirected graph.
    ///
    /// Self-loops are ignored and duplicate edges are collapsed to a single
    /// unit entry, matching the paper's modelling of transit networks as
    /// simple undirected graphs.
    pub fn from_undirected_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let weighted: Vec<(u32, u32, f64)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::build(n, &weighted, true)
    }

    /// Builds a weighted symmetric matrix from undirected edges; duplicate
    /// entries have their weights summed.
    pub fn from_weighted_undirected_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        Self::build(n, edges, false)
    }

    fn build(n: usize, edges: &[(u32, u32, f64)], collapse_to_unit: bool) -> Self {
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of bounds for n={n}");
            if u == v {
                continue;
            }
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0usize);
        for row in adj.iter_mut() {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut w = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    w += row[j].1;
                    j += 1;
                }
                col_idx.push(c);
                vals.push(if collapse_to_unit { 1.0 } else { w });
                i = j;
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { n, row_ptr, col_idx, vals }
    }

    /// A copy of this matrix with additional undirected unit edges.
    ///
    /// Edges already present are left untouched (adjacency stays 0/1); the
    /// planner uses this to score candidate networks `G'r = Gr + μ`.
    pub fn with_added_unit_edges(&self, new_edges: &[(u32, u32)]) -> CsrMatrix {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.nnz() / 2 + new_edges.len());
        for u in 0..self.n {
            let (cols, _) = self.row_entries(u);
            for &c in cols {
                if (c as usize) > u {
                    edges.push((u as u32, c));
                }
            }
        }
        edges.extend_from_slice(new_edges);
        CsrMatrix::from_undirected_edges(self.n, &edges)
    }

    /// Materializes additional undirected unit edges into this matrix **in
    /// place**.
    ///
    /// For a 0/1 adjacency matrix the result is bit-identical to the
    /// from-scratch rebuild `*self = self.with_added_unit_edges(new_edges)`
    /// — same `row_ptr`/`col_idx`/`vals` arrays — but instead of
    /// re-assembling every row from an edge list, each row's existing
    /// entries are shifted once (back to front) and the new entries merged
    /// in sorted column order. Self-loops, duplicates, and pairs already
    /// present are dropped, exactly like the rebuild. This is the "commit"
    /// primitive of long-lived planning sessions: promoting a scored
    /// [`crate::EdgeOverlay`] into the base matrix without rebuilding `A`.
    pub fn absorb_unit_edges(&mut self, new_edges: &[(u32, u32)]) {
        let n = self.n as u32;
        let mut add: Vec<(u32, u32)> = Vec::with_capacity(2 * new_edges.len());
        for &(u, v) in new_edges {
            assert!((u < n) && (v < n), "edge ({u},{v}) out of bounds for n={n}");
            if u == v || self.has_edge(u, v) {
                continue;
            }
            add.push((u, v));
            add.push((v, u));
        }
        add.sort_unstable();
        add.dedup();
        if add.is_empty() {
            return;
        }

        let total = self.col_idx.len() + add.len();
        self.col_idx.resize(total, 0);
        self.vals.resize(total, 0.0);
        // Merge rows back to front: `write` is one past the next slot, so
        // every surviving entry moves at most once and never overwrites an
        // unread one (`write >= hi` holds while adds remain unplaced).
        let mut write = total;
        let mut a = add.len();
        for i in (0..self.n).rev() {
            let lo = self.row_ptr[i];
            let mut k = self.row_ptr[i + 1];
            self.row_ptr[i + 1] = write;
            loop {
                let take_add = a > 0
                    && add[a - 1].0 as usize == i
                    && (k == lo || add[a - 1].1 > self.col_idx[k - 1]);
                if take_add {
                    a -= 1;
                    write -= 1;
                    self.col_idx[write] = add[a].1;
                    self.vals[write] = 1.0;
                } else if k > lo {
                    k -= 1;
                    write -= 1;
                    self.col_idx[write] = self.col_idx[k];
                    self.vals[write] = self.vals[k];
                } else {
                    break;
                }
            }
        }
        debug_assert_eq!(a, 0, "all overlay entries placed");
        debug_assert_eq!(write, self.row_ptr[0]);
    }

    /// Matrix dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (directed) entries; for a simple graph this is twice
    /// the undirected edge count.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of undirected edges (assuming a symmetric 0/1 matrix).
    pub fn num_undirected_edges(&self) -> usize {
        self.nnz() / 2
    }

    /// Column indices and values of row `i`.
    pub fn row_entries(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Degree (stored entries) of row `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Whether the undirected edge `(u, v)` is present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let (cols, _) = self.row_entries(u as usize);
        cols.binary_search(&v).is_ok()
    }

    /// `y = A x`.
    ///
    /// # Panics
    /// Panics if `x` or `y` have length different from `n`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "matvec: x length");
        assert_eq!(y.len(), self.n, "matvec: y length");
        for i in 0..self.n {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.vals[k] * x[self.col_idx[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// Convenience allocating version of [`CsrMatrix::matvec`].
    pub fn matvec_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec(x, &mut y);
        y
    }

    /// Blocked multi-RHS product over interleaved (node-major) storage:
    /// `ys[i*nrhs + j] = Σ_k A[i, c_k] · xs[c_k*nrhs + j]`.
    ///
    /// Streams the CSR arrays once for all `nrhs` right-hand sides; the
    /// per-RHS accumulation order matches [`CsrMatrix::matvec`] exactly, so
    /// the results are bit-identical to `nrhs` scalar products.
    ///
    /// # Panics
    /// Panics if `xs` or `ys` have length different from `n * nrhs`.
    pub fn matvec_block(&self, xs: &[f64], ys: &mut [f64], nrhs: usize) {
        assert_eq!(xs.len(), self.n * nrhs, "matvec_block: xs length");
        assert_eq!(ys.len(), self.n * nrhs, "matvec_block: ys length");
        for i in 0..self.n {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let yrow = &mut ys[i * nrhs..(i + 1) * nrhs];
            yrow.fill(0.0);
            for k in lo..hi {
                let v = self.vals[k];
                let c = self.col_idx[k] as usize;
                let xrow = &xs[c * nrhs..(c + 1) * nrhs];
                for (yj, xj) in yrow.iter_mut().zip(xrow) {
                    *yj += v * xj;
                }
            }
        }
    }

    /// Dense copy (for exact eigendecomposition of small matrices).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.n);
        for i in 0..self.n {
            let (cols, vals) = self.row_entries(i);
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(i, c as usize, v);
            }
        }
        d
    }

    /// Iterates over all stored `(row, col, value)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (usize, u32, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            let (cols, vals) = self.row_entries(i);
            cols.iter().zip(vals).map(move |(&c, &v)| (i, c, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrMatrix {
        CsrMatrix::from_undirected_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn adjacency_is_symmetric_and_unit() {
        let a = triangle();
        assert_eq!(a.n(), 3);
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.num_undirected_edges(), 3);
        for (i, c, v) in a.entries() {
            assert_eq!(v, 1.0);
            assert!(a.has_edge(c, i as u32), "symmetry broken at ({i},{c})");
        }
    }

    #[test]
    fn duplicates_and_self_loops_are_ignored() {
        let a = CsrMatrix::from_undirected_edges(3, &[(0, 1), (1, 0), (0, 0), (0, 1)]);
        assert_eq!(a.nnz(), 2);
        assert!(a.has_edge(0, 1));
        assert!(!a.has_edge(0, 2));
        assert!(!a.has_edge(0, 0));
    }

    #[test]
    fn weighted_duplicates_sum() {
        let a = CsrMatrix::from_weighted_undirected_edges(2, &[(0, 1, 2.0), (0, 1, 3.0)]);
        let (cols, vals) = a.row_entries(0);
        assert_eq!(cols, &[1]);
        assert_eq!(vals, &[5.0]);
    }

    #[test]
    fn matvec_triangle() {
        let a = triangle();
        let y = a.matvec_alloc(&[1.0, 2.0, 3.0]);
        // Each node sees the sum of the other two.
        assert_eq!(y, vec![5.0, 4.0, 3.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a =
            CsrMatrix::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let d = a.to_dense();
        let x = vec![0.5, -1.0, 2.0, 0.25, 3.0];
        let ys = a.matvec_alloc(&x);
        let yd = d.matvec_alloc(&x);
        for (s, dn) in ys.iter().zip(&yd) {
            assert!((s - dn).abs() < 1e-15);
        }
    }

    #[test]
    fn with_added_unit_edges_extends() {
        let a = CsrMatrix::from_undirected_edges(4, &[(0, 1), (1, 2)]);
        let b = a.with_added_unit_edges(&[(2, 3), (0, 1)]);
        assert_eq!(b.num_undirected_edges(), 3);
        assert!(b.has_edge(2, 3));
        assert!(b.has_edge(0, 1));
        // Original is untouched.
        assert!(!a.has_edge(2, 3));
    }

    #[test]
    fn absorb_unit_edges_is_bit_identical_to_rebuild() {
        // Random-ish graphs over several densities: absorbing must produce
        // the exact arrays a from-scratch rebuild produces.
        for (n, seed) in [(6usize, 1u64), (17, 2), (40, 3), (40, 4)] {
            let mut edges = Vec::new();
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as u32
            };
            for _ in 0..(n * 2) {
                let (u, v) = (next() % n as u32, next() % n as u32);
                if u != v {
                    edges.push((u, v));
                }
            }
            let base = CsrMatrix::from_undirected_edges(n, &edges);
            let mut adds = Vec::new();
            for _ in 0..5 {
                let (u, v) = (next() % n as u32, next() % n as u32);
                adds.push((u, v)); // may be present, absent, or a self-loop
            }
            let mut absorbed = base.clone();
            absorbed.absorb_unit_edges(&adds);
            assert_eq!(absorbed, base.with_added_unit_edges(&adds), "n={n} seed={seed}");
        }
    }

    #[test]
    fn absorb_no_new_edges_is_identity() {
        let a = triangle();
        let mut b = a.clone();
        b.absorb_unit_edges(&[]);
        assert_eq!(a, b);
        b.absorb_unit_edges(&[(0, 1), (2, 2)]); // present + self-loop
        assert_eq!(a, b);
    }

    #[test]
    fn absorb_into_empty_rows() {
        let mut a = CsrMatrix::from_undirected_edges(4, &[(1, 2)]);
        a.absorb_unit_edges(&[(0, 3), (3, 0), (0, 3)]);
        assert_eq!(a, CsrMatrix::from_undirected_edges(4, &[(1, 2), (0, 3)]));
        assert!(a.has_edge(0, 3));
        assert_eq!(a.num_undirected_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn absorb_out_of_bounds_panics() {
        let mut a = triangle();
        a.absorb_unit_edges(&[(0, 9)]);
    }

    #[test]
    fn degree_counts_neighbors() {
        let a = triangle();
        assert_eq!(a.degree(0), 2);
        let b = CsrMatrix::from_undirected_edges(3, &[(0, 1)]);
        assert_eq!(b.degree(2), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        CsrMatrix::from_undirected_edges(2, &[(0, 5)]);
    }
}
