//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access, so the
//! handful of `rand 0.8` APIs the workspace uses are reimplemented here and
//! wired in as a path dependency. The subset is:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (deterministic for a given seed, like upstream, though the stream
//!   differs from upstream's ChaCha12);
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Statistical quality is more than adequate for the simulations and
//! randomized tests in this workspace, but this is **not** a
//! cryptographically secure generator.

pub mod rngs;
pub mod seq;

/// A source of random `u64`s (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard distribution usable via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}
