//! Graph Laplacian and algebraic connectivity (Fiedler value).
//!
//! The paper's §2 weighs natural connectivity against the classical
//! alternatives before adopting it: *algebraic connectivity* [31, 63] —
//! the second-smallest eigenvalue `λ₂(L)` of the Laplacian `L = D − A` —
//! "shows drastic changes by small graph alterations", which the
//! `ext_measures` experiment reproduces. This module provides `λ₂` both
//! exactly (dense eigensolve; the oracle) and iteratively: Lanczos on the
//! shifted operator `M = cI − L` restricted to the complement of the
//! all-ones kernel, so `λ₂(L) = c − λ_max(M|⊥𝟙)`.

use crate::eig::full_symmetric_eigenvalues;
use crate::error::LinalgError;
use crate::sparse::CsrMatrix;
use crate::vector::{axpy, dot, norm, scale};

/// Per-node (weighted) degrees of an adjacency matrix.
pub fn degrees(adj: &CsrMatrix) -> Vec<f64> {
    (0..adj.n()).map(|i| adj.row_entries(i).1.iter().sum()).collect()
}

/// Dense Laplacian `L = D − A` (small graphs / test oracle).
pub fn laplacian_dense(adj: &CsrMatrix) -> crate::dense::DenseMatrix {
    let n = adj.n();
    let mut l = crate::dense::DenseMatrix::zeros(n);
    for i in 0..n {
        let (cols, vals) = adj.row_entries(i);
        let mut deg = 0.0;
        for (&j, &w) in cols.iter().zip(vals) {
            l.add(i, j as usize, -w);
            deg += w;
        }
        l.add(i, i, deg);
    }
    l
}

/// Exact algebraic connectivity: second-smallest Laplacian eigenvalue.
///
/// Tiny negative values from roundoff are clamped to zero; a disconnected
/// graph returns exactly the (near-)zero second eigenvalue.
///
/// ```
/// use ct_linalg::{algebraic_connectivity_exact, CsrMatrix};
/// // Complete graph K₃: λ₂(L) = n = 3.
/// let k3 = CsrMatrix::from_undirected_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// assert!((algebraic_connectivity_exact(&k3).unwrap() - 3.0).abs() < 1e-9);
/// ```
pub fn algebraic_connectivity_exact(adj: &CsrMatrix) -> Result<f64, LinalgError> {
    let n = adj.n();
    if n < 2 {
        return Err(LinalgError::EmptyInput("graph with at least 2 nodes"));
    }
    let mut eigs = full_symmetric_eigenvalues(laplacian_dense(adj))?;
    eigs.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are not NaN"));
    Ok(eigs[1].max(0.0))
}

/// Iterative algebraic connectivity via deflated Lanczos.
///
/// Runs Lanczos with full reorthogonalization on `M = cI − L`
/// (`c = 2·max-degree ≥ λ_max(L)`), keeping every basis vector orthogonal
/// to the all-ones kernel of `L`; the largest Ritz value `θ` of the
/// restricted operator gives `λ₂ = c − θ`. Accurate to a few digits in
/// tens of steps on city-scale transit graphs — enough for the §2
/// comparison, where only the *shape* of the series matters.
pub fn algebraic_connectivity(adj: &CsrMatrix, steps: usize) -> Result<f64, LinalgError> {
    let n = adj.n();
    if n < 2 {
        return Err(LinalgError::EmptyInput("graph with at least 2 nodes"));
    }
    let deg = degrees(adj);
    let c = 2.0 * deg.iter().fold(0.0f64, |a, &b| a.max(b)).max(1.0);

    // Deterministic start vector, made orthogonal to 𝟙.
    let mut v: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 97) as f64 / 97.0 - 0.5).collect();
    project_out_ones(&mut v);
    let nv = norm(&v);
    if nv <= 0.0 {
        return Err(LinalgError::EmptyInput("start vector"));
    }
    scale(1.0 / nv, &mut v);

    // Lanczos on M = cI − L with full reorthogonalization. On breakdown
    // (the Krylov space of the start vector is exhausted — e.g. the start
    // had no component on the Fiedler eigenspace) a fresh direction is
    // injected with zero off-diagonal coupling; the block-tridiagonal
    // eigenvalues are then the union over blocks, so nothing is lost.
    let m = steps.clamp(2, n.saturating_sub(1)).max(2);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);
    let mut basis: Vec<Vec<f64>> = vec![v.clone()];
    let mut w = vec![0.0; n];
    let mut injections = 0usize;
    for j in 0..m {
        let q = &basis[j];
        // w = M q = c q − (D − A) q.
        adj.matvec(q, &mut w);
        for i in 0..n {
            w[i] = c * q[i] - (deg[i] * q[i] - w[i]);
        }
        let alpha = dot(&w, q);
        axpy(-alpha, q, &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &basis[j - 1], &mut w);
        }
        // Full reorthogonalization (including against 𝟙 to pin deflation).
        project_out_ones(&mut w);
        for q_old in &basis {
            let d = dot(&w, q_old);
            axpy(-d, q_old, &mut w);
        }
        alphas.push(alpha);
        if j + 1 == m {
            break;
        }
        let beta = norm(&w);
        if beta >= 1e-10 {
            betas.push(beta);
            let mut next = w.clone();
            scale(1.0 / beta, &mut next);
            basis.push(next);
            continue;
        }
        // Breakdown: inject a fresh orthogonal direction, if any remains.
        let mut injected = false;
        while injections < n {
            injections += 1;
            let mut fresh: Vec<f64> = (0..n)
                .map(|i| (((i + injections * 31) * 1103515245) % 89) as f64 / 89.0 - 0.5)
                .collect();
            project_out_ones(&mut fresh);
            for q_old in &basis {
                let d = dot(&fresh, q_old);
                axpy(-d, q_old, &mut fresh);
            }
            let nf = norm(&fresh);
            if nf >= 1e-8 {
                scale(1.0 / nf, &mut fresh);
                betas.push(0.0);
                basis.push(fresh);
                injected = true;
                break;
            }
        }
        if !injected {
            break; // the complement of 𝟙 is fully spanned
        }
    }

    let ritz = crate::tridiag::tridiag_eigenvalues(&alphas, &betas[..alphas.len() - 1])?;
    let theta = ritz.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    Ok((c - theta).max(0.0))
}

/// Removes the component along the all-ones vector.
fn project_out_ones(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrMatrix {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CsrMatrix::from_undirected_edges(n, &edges)
    }

    fn cycle(n: usize) -> CsrMatrix {
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((0, n as u32 - 1));
        CsrMatrix::from_undirected_edges(n, &edges)
    }

    fn complete(n: usize) -> CsrMatrix {
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            for j in i + 1..n as u32 {
                edges.push((i, j));
            }
        }
        CsrMatrix::from_undirected_edges(n, &edges)
    }

    #[test]
    fn degrees_and_dense_laplacian() {
        let a = path(3);
        assert_eq!(degrees(&a), vec![1.0, 2.0, 1.0]);
        let l = laplacian_dense(&a);
        // Row sums of a Laplacian are zero.
        for i in 0..3 {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
        assert_eq!(l.get(1, 1), 2.0);
        assert_eq!(l.get(0, 1), -1.0);
    }

    #[test]
    fn exact_fiedler_matches_closed_forms() {
        // Path P_n: λ₂ = 2(1 − cos(π/n)); cycle C_n: 2(1 − cos(2π/n));
        // complete K_n: n.
        let closed_path = |n: usize| 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        let closed_cycle = |n: usize| 2.0 * (1.0 - (2.0 * std::f64::consts::PI / n as f64).cos());
        for n in [3usize, 5, 8] {
            let p = algebraic_connectivity_exact(&path(n)).unwrap();
            assert!((p - closed_path(n)).abs() < 1e-9, "P_{n}: {p}");
            let c = algebraic_connectivity_exact(&cycle(n)).unwrap();
            assert!((c - closed_cycle(n)).abs() < 1e-9, "C_{n}: {c}");
            let k = algebraic_connectivity_exact(&complete(n)).unwrap();
            assert!((k - n as f64).abs() < 1e-9, "K_{n}: {k}");
        }
    }

    #[test]
    fn disconnected_graph_has_zero_fiedler_value() {
        // Two disjoint edges.
        let a = CsrMatrix::from_undirected_edges(4, &[(0, 1), (2, 3)]);
        assert!(algebraic_connectivity_exact(&a).unwrap() < 1e-12);
        assert!(algebraic_connectivity(&a, 10).unwrap() < 1e-9);
    }

    #[test]
    fn lanczos_matches_exact_on_structured_graphs() {
        for (name, g) in [("P12", path(12)), ("C15", cycle(15)), ("K8", complete(8))] {
            let exact = algebraic_connectivity_exact(&g).unwrap();
            let iter = algebraic_connectivity(&g, 30).unwrap();
            assert!(
                (exact - iter).abs() < 1e-6 * exact.max(1.0),
                "{name}: exact {exact} vs lanczos {iter}"
            );
        }
    }

    #[test]
    fn lanczos_matches_exact_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 30;
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        for _ in 0..40 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                edges.push((u.min(v), u.max(v)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let g = CsrMatrix::from_undirected_edges(n, &edges);
        let exact = algebraic_connectivity_exact(&g).unwrap();
        let iter = algebraic_connectivity(&g, 29).unwrap();
        assert!((exact - iter).abs() < 1e-5 * exact.max(1.0), "{exact} vs {iter}");
    }

    #[test]
    fn fiedler_increases_with_edge_addition() {
        // Adding an edge can only increase (weakly) algebraic connectivity.
        let p = path(8);
        let before = algebraic_connectivity_exact(&p).unwrap();
        let after = algebraic_connectivity_exact(&p.with_added_unit_edges(&[(0, 7)])).unwrap();
        assert!(after >= before - 1e-12);
        assert!(after > before + 1e-6, "closing a path into a cycle must help");
    }

    #[test]
    fn tiny_graphs_are_errors() {
        let one = CsrMatrix::from_undirected_edges(1, &[]);
        assert!(algebraic_connectivity_exact(&one).is_err());
        assert!(algebraic_connectivity(&one, 10).is_err());
    }
}
