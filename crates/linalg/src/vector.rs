//! Dense vector kernels used by the iterative methods.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes `x` in place and returns its original norm.
///
/// A zero vector is left untouched and 0.0 is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Removes from `v` its components along each (assumed orthonormal) basis
/// vector in `basis`. One pass of classical Gram–Schmidt.
pub fn orthogonalize_against(v: &mut [f64], basis: &[Vec<f64>]) {
    for q in basis {
        let c = dot(v, q);
        axpy(-c, q, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut v = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut v);
        assert_eq!(n, 5.0);
        assert!((norm(&v) - 1.0).abs() < 1e-15);

        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_components() {
        let q1 = vec![1.0, 0.0, 0.0];
        let q2 = vec![0.0, 1.0, 0.0];
        let mut v = vec![3.0, 4.0, 5.0];
        orthogonalize_against(&mut v, &[q1, q2]);
        assert!((v[0]).abs() < 1e-15);
        assert!((v[1]).abs() < 1e-15);
        assert_eq!(v[2], 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
