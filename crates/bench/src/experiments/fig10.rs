//! Figure 10: objective / connectivity / demand increments vs. k.

use ct_core::PlannerMode;

use crate::harness::{f, ExperimentCtx, OutputSink};

/// Runs this experiment and writes its artifacts.
pub fn run(ctx: &mut ExperimentCtx) {
    let mut sink = OutputSink::new("fig10");
    sink.line("# Fig. 10 — increments with increasing k (ETA-Pre, Chicago)");
    sink.blank();

    let ks: Vec<usize> = if ctx.fast { vec![10, 30, 60] } else { vec![10, 20, 30, 40, 50, 60] };
    ctx.prepare("chicago");

    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &k in &ks {
        let mut params = ctx.base_params();
        params.k = k;
        let planner = ctx.planner("chicago", params);
        let res = planner.run(PlannerMode::EtaPre);
        let pre = planner.precomputed();
        let conn_norm = res.best.conn_increment / pre.lambda_max;
        let dem_norm = res.best.demand / pre.d_max;
        rows.push(vec![
            format!("k={k}"),
            f(conn_norm, 3),
            f(dem_norm, 3),
            f(res.best.objective, 3),
            res.best.num_edges().to_string(),
        ]);
        series.push(serde_json::json!({
            "k": k,
            "connectivity": conn_norm,
            "demand": dem_norm,
            "objective": res.best.objective,
            "edges": res.best.num_edges(),
        }));
    }
    sink.table(&["k", "connectivity (norm)", "demand (norm)", "objective", "#edges"], &rows);
    sink.blank();
    sink.line(
        "Shape check (paper): normalized values *drop* as k grows because \
         the Eq. 12 normalizers (top-k sums) grow faster than what one \
         feasible route can capture.",
    );
    sink.write_json(&serde_json::json!({ "chicago": series }));
    sink.finish();
}
