//! Equivalence contract of incremental planning sessions: `plan → commit →
//! plan → …` through a [`PlanningSession`] must be **bit-identical** to the
//! retained rebuild-per-round reference (`plan_multiple_reference`) — same
//! routes, same candidate ids, same scores — for every planner mode, any
//! number of rounds, and any thread count. The session may only *save
//! work* (candidate re-enumeration, Δ-sweep allocations), never change a
//! bit of the answer (see `docs/ALGORITHMS.md`, "Planning sessions").

use std::sync::Arc;

use ct_core::{
    plan_multiple, plan_multiple_reference, CtBusParams, PlannerMode, PlanningSession, Precomputed,
};
use ct_data::{City, CityConfig, DemandModel};
use proptest::prelude::*;

fn small_city(seed: u64) -> (City, DemandModel) {
    let city = CityConfig::small().seed(seed).generate();
    let demand = DemandModel::from_city(&city);
    (city, demand)
}

/// Trimmed parameters so the mode × thread × round matrix stays fast.
fn quick_params() -> CtBusParams {
    let mut params = CtBusParams::small_defaults();
    params.k = 6;
    params.sn = 80;
    params.it_max = 400;
    params.trace_probes = 8;
    params.lanczos_steps = 6;
    params
}

#[test]
fn session_equals_rebuild_across_modes_and_thread_counts() {
    let (city, demand) = small_city(301);
    let mut params = quick_params();
    for mode in [PlannerMode::EtaPre, PlannerMode::VkTsp, PlannerMode::EtaNoDomination] {
        params.parallelism.threads = 1;
        let reference = plan_multiple_reference(&city, &demand, params, 3, mode);
        assert!(!reference.is_empty(), "{mode:?}: fixture planned nothing");
        for threads in [1usize, 2, 4] {
            params.parallelism.threads = threads;
            let session = plan_multiple(&city, &demand, params, 3, mode);
            assert_eq!(
                session, reference,
                "{mode:?} session diverged from rebuild at threads={threads}"
            );
        }
    }
}

#[test]
fn session_survives_planning_to_exhaustion() {
    // Demand-only planning until the corpus is fully served: both drivers
    // must stop at the same round with the same plans.
    let (city, demand) = small_city(302);
    let mut params = quick_params();
    params.w = 1.0; // objective hits 0 exactly when no unserved demand remains
    params.sn = 40;
    params.it_max = 200;
    let session = plan_multiple(&city, &demand, params, 40, PlannerMode::EtaPre);
    let reference = plan_multiple_reference(&city, &demand, params, 40, PlannerMode::EtaPre);
    assert_eq!(session, reference);
    assert!(session.len() < 40, "fixture unexpectedly supports 40 routes");
}

#[test]
fn branch_commit_replan_equals_straight_line() {
    // Branching must be semantically invisible: a branch that commits the
    // same plan reaches exactly the state the main line reaches.
    let (city, demand) = small_city(303);
    let params = quick_params();
    let mut main = PlanningSession::new(city.clone(), demand.clone(), params);
    let first = main.plan(PlannerMode::EtaPre);
    assert!(!first.best.is_empty());

    let mut branch = main.branch();
    branch.commit(&first.best);
    main.commit(&first.best);

    let a = main.plan(PlannerMode::EtaPre);
    let b = branch.plan(PlannerMode::EtaPre);
    assert_eq!(a.best, b.best);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.evaluations, b.evaluations);
}

#[test]
fn no_road_or_trajectory_copies_across_rounds() {
    // The copy-on-write contract, pinned by pointer identity: however many
    // rounds are committed, the session's city still holds the exact Arcs
    // the caller handed in.
    let (city, demand) = small_city(304);
    let road = Arc::clone(&city.road);
    let trajectories = Arc::clone(&city.trajectories);
    let params = quick_params();
    let mut session = PlanningSession::new(city, demand, params);
    let mut rounds = 0;
    for _ in 0..3 {
        let result = session.plan(PlannerMode::EtaPre);
        if result.best.is_empty() || result.best.objective <= 0.0 {
            break;
        }
        session.commit(&result.best);
        rounds += 1;
        assert!(Arc::ptr_eq(&road, &session.city().road), "round {rounds} cloned the roads");
        assert!(
            Arc::ptr_eq(&trajectories, &session.city().trajectories),
            "round {rounds} cloned the trajectories"
        );
    }
    assert!(rounds >= 2, "fixture committed too few rounds to be meaningful");
}

#[test]
fn perturbation_method_sessions_are_equivalent_too() {
    // The commit path is Δ-method agnostic: under the deterministic
    // perturbation scoring, a committed session must equal a fresh
    // perturbation build as well.
    use ct_core::DeltaMethod;
    let (city, demand) = small_city(305);
    let params = quick_params();
    let mut session = PlanningSession::new(city.clone(), demand.clone(), params)
        .with_method(DeltaMethod::Perturbation);
    let first = session.plan(PlannerMode::EtaPre);
    assert!(!first.best.is_empty());
    session.commit(&first.best);
    let second = session.plan(PlannerMode::EtaPre);

    // Reference: rebuild with the same method on the evolved state.
    let fresh = Precomputed::build_with(
        session.city(),
        session.demand(),
        &params,
        DeltaMethod::Perturbation,
    );
    let planner = ct_core::Planner::with_precomputed(session.city(), params, fresh);
    let reference = planner.run(PlannerMode::EtaPre);
    assert_eq!(second.best, reference.best);
    assert_eq!(second.trace, reference.trace);
    assert_eq!(second.evaluations, reference.evaluations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random city, mode, weight, rounds: the session path must reproduce
    // the rebuild-per-round reference bit for bit at 1, 2, and 4 threads.
    #[test]
    fn session_bit_identical_to_rebuild_on_generated_cities(
        seed in 0u64..10_000,
        mode_idx in 0usize..3,
        w_step in 0u32..5,
        rounds in 1usize..=3,
    ) {
        let (city, demand) = small_city(seed);
        let mut params = quick_params();
        params.w = f64::from(w_step) / 4.0;
        let mode = [PlannerMode::EtaPre, PlannerMode::VkTsp, PlannerMode::EtaAllNeighbors]
            [mode_idx];
        params.parallelism.threads = 1;
        let reference = plan_multiple_reference(&city, &demand, params, rounds, mode);
        for threads in [1usize, 2, 4] {
            params.parallelism.threads = threads;
            let session = plan_multiple(&city, &demand, params, rounds, mode);
            prop_assert_eq!(&session, &reference, "mode {:?} threads {}", mode, threads);
        }
    }
}
