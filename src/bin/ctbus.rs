//! `ctbus` — plan connectivity- and demand-aware bus routes from the shell.

use ct_bus::cli::{Cli, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "help" {
        eprint!("{USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let cli = match Cli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = cli.execute(&mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
