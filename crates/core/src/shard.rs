//! Spatially sharded planning: partitioned Δ(e) sweep with boundary
//! stitching.
//!
//! The road network is split into spatial shards with
//! [`ct_spatial::ShardMap`]; every *new* candidate is then classified by
//! the shards its road corridor touches:
//!
//! * **shard-local** — the corridor stays inside one shard. Local
//!   candidates are swept shard-parallel: workers steal whole shards and
//!   sweep each shard's pool with a thread-local workspace.
//! * **boundary** — the corridor touches ≥ 2 shards. Boundary candidates
//!   are stitched through the existing global [`ct_linalg::EdgeOverlay`]
//!   sweep, exactly as the unsharded path scores them.
//!
//! **Bit-identity contract.** Each Δ(e) is a pure function of the frozen
//! probes, the base matrix, and the candidate edge — never of which worker
//! or which partition scored it. Sharding therefore only re-groups the id
//! set: `shards = 1` is literally the unsharded sweep, and every shard
//! count produces bit-identical `Precomputed` state (pinned by the
//! `shard_equivalence` suite the same way thread invariance is).
//!
//! **Commit skipping.** The layout keeps, per shard, a bitset of the road
//! edges its local corridors touch. A committed route's covered road
//! edges intersect few shards, so the approximate refresh tier skips the
//! per-candidate corridor scan for every shard the route never enters —
//! the "most shards never see a given commit" locality the ROADMAP's
//! sharding item calls for.

use ct_graph::RoadNetwork;
use ct_spatial::ShardMap;

use crate::candidates::CandidateSet;

/// A fixed-size bitset over road-edge ids.
#[derive(Debug, Clone, Default)]
struct EdgeBits {
    words: Vec<u64>,
}

impl EdgeBits {
    fn new(bits: usize) -> Self {
        EdgeBits { words: vec![0u64; bits.div_ceil(64)] }
    }

    fn set(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }

    /// Whether any set bit is also set in the boolean `mask`.
    fn intersects(&self, mask: &[bool]) -> bool {
        for (wi, &word) in self.words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = wi * 64;
            for b in 0..64 {
                if word & (1u64 << b) != 0 && mask.get(base + b).copied().unwrap_or(false) {
                    return true;
                }
            }
        }
        false
    }
}

/// The shard classification of a candidate pool over a road network.
///
/// Candidate ids held by the layout track the pool through commits via
/// [`ShardLayout::remap_after_promotion`]; the per-shard road-edge bitsets
/// stay fixed (they only ever *over*-approximate after promotions, which
/// keeps skipping conservative).
#[derive(Debug, Clone)]
pub struct ShardLayout {
    num_shards: usize,
    node_shard: Vec<u32>,
    /// Per shard: sorted ids of new candidates whose corridor stays inside
    /// the shard.
    local: Vec<Vec<u32>>,
    /// Sorted ids of new candidates whose corridor touches ≥ 2 shards (or
    /// has no corridor to classify by).
    boundary: Vec<u32>,
    /// Per shard: road edges any of its local corridors touch.
    road_touch: Vec<EdgeBits>,
}

impl ShardLayout {
    /// Builds the layout for `candidates` over `road`, partitioned into
    /// (at most) `num_shards` spatial shards of road nodes.
    pub fn build(road: &RoadNetwork, candidates: &CandidateSet, num_shards: usize) -> ShardLayout {
        let map = ShardMap::build(road.positions(), num_shards);
        let node_shard: Vec<u32> = (0..road.num_nodes() as u32).map(|i| map.shard_of(i)).collect();
        Self::from_node_shards(road, candidates, node_shard, map.num_shards())
    }

    /// Builds the layout from an explicit road-node → shard assignment
    /// (exposed for tests that need full control over the boundary set,
    /// e.g. an assignment where every corridor straddles two shards).
    pub fn from_node_shards(
        road: &RoadNetwork,
        candidates: &CandidateSet,
        node_shard: Vec<u32>,
        num_shards: usize,
    ) -> ShardLayout {
        assert_eq!(node_shard.len(), road.num_nodes(), "one shard per road node");
        assert!(num_shards >= 1, "at least one shard");
        let mut local: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
        let mut boundary: Vec<u32> = Vec::new();
        let mut road_touch: Vec<EdgeBits> = vec![EdgeBits::new(road.num_edges()); num_shards];

        for (id, e) in candidates.edges().iter().enumerate() {
            if e.existing {
                continue;
            }
            // The shards this corridor touches, via its road-edge endpoints.
            let mut first: Option<u32> = None;
            let mut multi = e.road_edges.is_empty();
            'scan: for &r in &e.road_edges {
                let re = road.edge(r);
                for node in [re.u, re.v] {
                    let s = node_shard[node as usize];
                    match first {
                        None => first = Some(s),
                        Some(f) if f != s => {
                            multi = true;
                            break 'scan;
                        }
                        Some(_) => {}
                    }
                }
            }
            if multi {
                boundary.push(id as u32);
            } else if let Some(s) = first {
                local[s as usize].push(id as u32);
                for &r in &e.road_edges {
                    road_touch[s as usize].set(r);
                }
            }
        }
        // Ids were pushed in ascending order, so the lists are sorted; the
        // sweep order inside a shard matches the unsharded scan order.
        ShardLayout { num_shards, node_shard, local, boundary, road_touch }
    }

    /// Number of shards (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard of road node `node`.
    pub fn node_shard(&self, node: u32) -> u32 {
        self.node_shard[node as usize]
    }

    /// Sorted shard-local candidate ids of shard `s`.
    pub fn local(&self, s: usize) -> &[u32] {
        &self.local[s]
    }

    /// Sorted boundary candidate ids (corridor touches ≥ 2 shards).
    pub fn boundary(&self) -> &[u32] {
        &self.boundary
    }

    /// Total number of classified (new) candidates.
    pub fn num_classified(&self) -> usize {
        self.local.iter().map(Vec::len).sum::<usize>() + self.boundary.len()
    }

    /// Whether shard `s`'s local corridors touch any road edge set in
    /// `covered` (indexed by road-edge id). A `false` answer proves no
    /// local candidate of the shard overlaps the covered set, so a commit
    /// refresh may skip the shard without scanning its candidates.
    pub fn shard_touches(&self, s: usize, covered: &[bool]) -> bool {
        self.road_touch[s].intersects(covered)
    }

    /// Rewrites the tracked candidate ids after
    /// [`CandidateSet::promote_to_existing`] reordered the pool.
    ///
    /// `old_of` is the permutation the promotion returned (`old_of[new_id]`
    /// = old id; empty = identity). Promoted candidates have become
    /// existing edges and leave their lists; every surviving id is mapped
    /// to its new value. The road-edge bitsets are left as built — a
    /// superset of the surviving corridors, so skip decisions stay
    /// conservative (a shard is never skipped while a live local candidate
    /// overlaps the commit).
    pub fn remap_after_promotion(&mut self, old_of: &[u32], candidates: &CandidateSet) {
        let map_ids = |ids: &mut Vec<u32>| {
            if old_of.is_empty() {
                // Identity reorder: promoted pairs kept their ids but are
                // existing now — only possible when nothing was promoted,
                // so nothing to drop either.
                return;
            }
            let mut new_of = vec![u32::MAX; old_of.len()];
            for (new_id, &old_id) in old_of.iter().enumerate() {
                new_of[old_id as usize] = new_id as u32;
            }
            let mapped: Vec<u32> = ids
                .iter()
                .map(|&old| new_of[old as usize])
                .filter(|&new| !candidates.edge(new).existing)
                .collect();
            *ids = mapped;
            ids.sort_unstable();
        };
        for list in &mut self.local {
            map_ids(list);
        }
        map_ids(&mut self.boundary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_data::{CityConfig, DemandModel};

    #[test]
    fn classification_covers_every_new_candidate_exactly_once() {
        let city = CityConfig::small().seed(7).generate();
        let demand = DemandModel::from_city(&city);
        let cands = CandidateSet::build(&city, &demand, 450.0, 6.0);
        for shards in [1usize, 2, 4, 16] {
            let layout = ShardLayout::build(&city.road, &cands, shards);
            let mut seen: Vec<u32> = layout.boundary().to_vec();
            for s in 0..layout.num_shards() {
                seen.extend_from_slice(layout.local(s));
            }
            seen.sort_unstable();
            let expect: Vec<u32> =
                (0..cands.len() as u32).filter(|&i| !cands.edge(i).existing).collect();
            assert_eq!(seen, expect, "shards={shards}");
        }
    }

    #[test]
    fn one_shard_has_no_boundary() {
        let city = CityConfig::small().seed(7).generate();
        let demand = DemandModel::from_city(&city);
        let cands = CandidateSet::build(&city, &demand, 450.0, 6.0);
        let layout = ShardLayout::build(&city.road, &cands, 1);
        assert_eq!(layout.num_shards(), 1);
        assert!(layout.boundary().is_empty());
        assert_eq!(layout.local(0).len(), cands.num_new());
    }

    #[test]
    fn local_corridors_are_recorded_in_the_touch_bitset() {
        let city = CityConfig::small().seed(3).generate();
        let demand = DemandModel::from_city(&city);
        let cands = CandidateSet::build(&city, &demand, 450.0, 6.0);
        let layout = ShardLayout::build(&city.road, &cands, 4);
        let mut mask = vec![false; city.road.num_edges()];
        for s in 0..layout.num_shards() {
            for &id in layout.local(s) {
                for &r in &cands.edge(id).road_edges {
                    mask.fill(false);
                    mask[r as usize] = true;
                    assert!(layout.shard_touches(s, &mask), "shard {s} misses road edge {r}");
                }
            }
        }
        // A mask with no covered edges touches nothing.
        mask.fill(false);
        for s in 0..layout.num_shards() {
            assert!(!layout.shard_touches(s, &mask));
        }
    }

    #[test]
    fn edge_bits_set_and_intersect() {
        let mut b = EdgeBits::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        let mut mask = vec![false; 130];
        assert!(!b.intersects(&mask));
        mask[129] = true;
        assert!(b.intersects(&mask));
        // A mask shorter than the bit domain is handled (out-of-range bits
        // count as uncovered).
        assert!(b.intersects(&[true]));
        assert!(!b.intersects(&[false]));
    }
}
