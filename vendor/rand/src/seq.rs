//! Slice helpers (stand-in for `rand::seq`).

use crate::{Rng, RngCore};

/// Random operations on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
