//! A complete dataset: road network + transit network + trajectories.

use std::sync::Arc;

use ct_graph::{RoadNetwork, TransitNetwork};
use serde::{Deserialize, Serialize};

use crate::trajectory::Trajectory;

/// Everything CT-Bus needs about one city.
///
/// The struct is **copy-on-write friendly**: the road network and the
/// trajectory corpus — the two heavyweight, effectively immutable layers —
/// sit behind [`Arc`]s, so `City::clone` shares them and only the (small,
/// evolving) transit network is deep-copied. Long-lived scenario engines
/// (`ct_core`'s planning sessions) rely on this: committing a planned route
/// replaces `transit` without ever duplicating roads or trajectories.
/// Thanks to deref coercion, read access is unchanged (`&city.road` still
/// yields a `&RoadNetwork`); the rare mutation of a shared layer goes
/// through [`Arc::make_mut`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// Human-readable dataset name (e.g. `"chicago-like"`).
    pub name: String,
    /// The road network `G` (shared, never deep-copied by `clone`).
    pub road: Arc<RoadNetwork>,
    /// The transit network `Gr` (the evolving layer; deep-copied).
    pub transit: TransitNetwork,
    /// The trajectory corpus `D` (shared, never deep-copied by `clone`).
    pub trajectories: Arc<Vec<Trajectory>>,
}

/// Dataset statistics in the shape of the paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CityStats {
    /// `|R|`: number of bus routes.
    pub routes: usize,
    /// `len(R)`: average number of stops per route.
    pub avg_route_len: f64,
    /// `|V|`: road vertices.
    pub road_nodes: usize,
    /// `|Vr|`: bus stops.
    pub stops: usize,
    /// `|E|`: road edges.
    pub road_edges: usize,
    /// `|Er|`: transit edges.
    pub transit_edges: usize,
    /// `|D|`: trajectories.
    pub trajectories: usize,
}

impl City {
    /// Assembles a city, wrapping the shared layers in their [`Arc`]s.
    pub fn new(
        name: impl Into<String>,
        road: RoadNetwork,
        transit: TransitNetwork,
        trajectories: Vec<Trajectory>,
    ) -> City {
        City {
            name: name.into(),
            road: Arc::new(road),
            transit,
            trajectories: Arc::new(trajectories),
        }
    }

    /// A copy of this city with the transit network replaced — the
    /// copy-on-write "commit" primitive: roads and trajectories are shared
    /// with `self`, never cloned.
    pub fn with_transit(&self, transit: TransitNetwork) -> City {
        City {
            name: self.name.clone(),
            road: Arc::clone(&self.road),
            transit,
            trajectories: Arc::clone(&self.trajectories),
        }
    }

    /// Table 5-style statistics.
    pub fn stats(&self) -> CityStats {
        CityStats {
            routes: self.transit.num_routes(),
            avg_route_len: self.transit.avg_route_len(),
            road_nodes: self.road.num_nodes(),
            stops: self.transit.num_stops(),
            road_edges: self.road.num_edges(),
            transit_edges: self.transit.num_edges(),
            trajectories: self.trajectories.len(),
        }
    }

    /// Sanity checks tying the three layers together; returns human-readable
    /// problems (empty = consistent).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, s) in self.transit.stops().iter().enumerate() {
            if (s.road_node as usize) >= self.road.num_nodes() {
                problems.push(format!("stop {i} sits on unknown road node {}", s.road_node));
            }
        }
        for (i, e) in self.transit.edges().iter().enumerate() {
            for &re in &e.road_edges {
                if (re as usize) >= self.road.num_edges() {
                    problems.push(format!("transit edge {i} references unknown road edge {re}"));
                }
            }
            if e.length <= 0.0 {
                problems.push(format!("transit edge {i} has non-positive length"));
            }
        }
        for (i, t) in self.trajectories.iter().enumerate() {
            if !t.is_consistent(&self.road) {
                problems.push(format!("trajectory {i} is not a connected road path"));
                if problems.len() > 20 {
                    break;
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_graph::{RoadEdge, TransitNetworkBuilder};
    use ct_spatial::Point;

    fn tiny_city() -> City {
        let positions: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let road_edges: Vec<RoadEdge> =
            (0..3).map(|i| RoadEdge { u: i, v: i + 1, length: 100.0 }).collect();
        let road = RoadNetwork::new(positions.clone(), road_edges);
        let mut b = TransitNetworkBuilder::new();
        let s0 = b.add_stop(0, positions[0]);
        let s1 = b.add_stop(2, positions[2]);
        b.add_route(&[s0, s1], |_, _| (200.0, vec![0, 1]));
        City::new("tiny", road, b.build(), vec![Trajectory::new(vec![0, 1, 2], vec![0, 1])])
    }

    #[test]
    fn stats_reflect_structure() {
        let c = tiny_city();
        let s = c.stats();
        assert_eq!(s.routes, 1);
        assert_eq!(s.road_nodes, 4);
        assert_eq!(s.stops, 2);
        assert_eq!(s.transit_edges, 1);
        assert_eq!(s.trajectories, 1);
        assert_eq!(s.avg_route_len, 2.0);
    }

    #[test]
    fn valid_city_has_no_problems() {
        assert!(tiny_city().validate().is_empty());
    }

    #[test]
    fn broken_trajectory_is_reported() {
        let mut c = tiny_city();
        Arc::make_mut(&mut c.trajectories).push(Trajectory { nodes: vec![0, 3], edges: vec![0] });
        let problems = c.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("trajectory"));
    }

    #[test]
    fn clone_shares_road_and_trajectories() {
        // The copy-on-write contract: cloning a city must not deep-copy
        // the heavyweight shared layers.
        let a = tiny_city();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.road, &b.road), "clone deep-copied the road network");
        assert!(Arc::ptr_eq(&a.trajectories, &b.trajectories), "clone deep-copied trajectories");
        let c = a.with_transit(a.transit.clone());
        assert!(Arc::ptr_eq(&a.road, &c.road));
        assert!(Arc::ptr_eq(&a.trajectories, &c.trajectories));
    }
}
