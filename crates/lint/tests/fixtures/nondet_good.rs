// Fixture: nothing here may flag.

use std::collections::{BTreeMap, HashMap, HashSet};

fn btree_is_ordered(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().sum()
}

fn lookups_are_fine(m: &HashMap<u32, f64>, k: u32) -> f64 {
    *m.entry(k).or_insert(0.0) + m.get(&k).copied().unwrap_or(0.0)
}

fn normalized_consumers(m: &HashMap<u32, f64>, s: &HashSet<u32>) -> (usize, f64) {
    // Order-insensitive consumption in the same statement is waived.
    let n = m.keys().count();
    let top = m.values().copied().fold(0.0, f64::max).max(0.0);
    let _sorted = s.iter().map(|&v| (v, v)).collect::<BTreeMap<u32, u32>>();
    let _ordered = s.iter().copied().collect::<std::collections::BTreeSet<u32>>();
    (n, top)
}

fn ordered_scores() -> BTreeMap<u32, f64> {
    BTreeMap::new()
}

fn hash_scores() -> HashMap<u32, f64> {
    HashMap::new()
}

fn returned_bindings(k: u32) -> (f64, f64) {
    // A BTreeMap-returning call stays untracked; a HashMap-returning call
    // is tracked but lookups on the binding never flag.
    let ordered = ordered_scores();
    let looked_up = hash_scores();
    (ordered.values().sum(), looked_up.get(&k).copied().unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_iterate_freely() {
        let m: HashMap<u32, f64> = HashMap::new();
        for (k, v) in m.iter() {
            assert!(*v >= 0.0 || *k > 0);
        }
    }
}
