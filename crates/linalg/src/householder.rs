//! Householder reduction of a dense symmetric matrix to tridiagonal form.
//!
//! The eigenvalues-only variant (no transformation accumulation), which is
//! all the exact natural-connectivity baseline needs: reduce `A` to
//! tridiagonal `T` in `O(n³)`, then QL on `T` in `O(n²)`.

use crate::dense::DenseMatrix;

/// Reduces symmetric `a` (destroyed in place) to tridiagonal form.
///
/// Returns `(d, e)` where `d` is the diagonal and `e[i]` couples rows `i`
/// and `i + 1` (length `n`, last entry zero) — the convention expected by
/// [`crate::tridiag::tridiag_eigenvalues`].
pub fn householder_tridiagonalize(a: &mut DenseMatrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.n();
    let mut d = vec![0.0; n];
    // NR convention during the reduction: e_nr[i] couples rows i-1 and i.
    let mut e_nr = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += a.get(i, k).abs();
            }
            if scale == 0.0 {
                e_nr[i] = a.get(i, l);
            } else {
                for k in 0..=l {
                    let v = a.get(i, k) / scale;
                    a.set(i, k, v);
                    h += v * v;
                }
                let mut f = a.get(i, l);
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e_nr[i] = scale * g;
                h -= f * g;
                a.set(i, l, f - g);
                f = 0.0;
                for j in 0..=l {
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += a.get(j, k) * a.get(i, k);
                    }
                    for k in (j + 1)..=l {
                        g += a.get(k, j) * a.get(i, k);
                    }
                    e_nr[j] = g / h;
                    f += e_nr[j] * a.get(i, j);
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = a.get(i, j);
                    let g = e_nr[j] - hh * f;
                    e_nr[j] = g;
                    for k in 0..=j {
                        let v = a.get(j, k) - (f * e_nr[k] + g * a.get(i, k));
                        a.set(j, k, v);
                    }
                }
            }
        } else {
            e_nr[i] = a.get(i, l);
        }
        d[i] = h;
    }
    e_nr[0] = 0.0;
    for i in 0..n {
        d[i] = a.get(i, i);
    }

    // Convert to the "e[i] couples i and i+1" convention.
    let mut e = vec![0.0; n];
    if n > 1 {
        e[..n - 1].copy_from_slice(&e_nr[1..]);
    }
    (d, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tridiag::tridiag_eigenvalues;

    #[test]
    fn already_tridiagonal_is_fixed_point_up_to_sign() {
        // Eigenvalues must be preserved even if signs of e flip.
        let mut a = DenseMatrix::zeros(4);
        for i in 0..4 {
            a.set(i, i, i as f64);
        }
        for i in 0..3 {
            a.set(i, i + 1, 1.0);
            a.set(i + 1, i, 1.0);
        }
        let reference = {
            let d = vec![0.0, 1.0, 2.0, 3.0];
            let e = vec![1.0, 1.0, 1.0];
            tridiag_eigenvalues(&d, &e).unwrap()
        };
        let (d, e) = householder_tridiagonalize(&mut a);
        let got = tridiag_eigenvalues(&d, &e).unwrap();
        for (g, r) in got.iter().zip(&reference) {
            assert!((g - r).abs() < 1e-10);
        }
    }

    #[test]
    fn preserves_trace() {
        let mut a = DenseMatrix::zeros(5);
        let vals = [
            [2.0, 1.0, 0.5, 0.0, -1.0],
            [1.0, 3.0, 0.2, 0.7, 0.0],
            [0.5, 0.2, -1.0, 0.9, 0.3],
            [0.0, 0.7, 0.9, 4.0, 1.1],
            [-1.0, 0.0, 0.3, 1.1, 0.5],
        ];
        for i in 0..5 {
            for j in 0..5 {
                a.set(i, j, vals[i][j]);
            }
        }
        let trace_before = a.trace();
        let (d, _) = householder_tridiagonalize(&mut a);
        let trace_after: f64 = d.iter().sum();
        assert!((trace_before - trace_after).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_matches_closed_form() {
        // [[a, b], [b, c]] has eigenvalues (a+c)/2 ± √(((a−c)/2)² + b²).
        let (aa, bb, cc) = (1.0, 2.0, -3.0);
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, aa);
        m.set(0, 1, bb);
        m.set(1, 0, bb);
        m.set(1, 1, cc);
        let (d, e) = householder_tridiagonalize(&mut m);
        let eigs = tridiag_eigenvalues(&d, &e).unwrap();
        let mid = (aa + cc) / 2.0;
        let rad = (((aa - cc) / 2.0f64).powi(2) + bb * bb).sqrt();
        assert!((eigs[0] - (mid - rad)).abs() < 1e-12);
        assert!((eigs[1] - (mid + rad)).abs() < 1e-12);
    }
}
