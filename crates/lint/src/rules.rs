//! The four rule families.
//!
//! Each rule is a pure function over a [`FileCtx`] token stream. They are
//! deliberately heuristic — token-level pattern matching, not type
//! inference — tuned so that every miss is a false *negative* a human
//! review can still catch, while false positives stay rare enough that a
//! justified `ctlint::allow` is a reasonable ask.

use crate::engine::{rule, Config, FileCtx, Finding};
use crate::lexer::is_keyword;
use std::collections::{BTreeMap, BTreeSet};

/// Iterator-producing methods whose order is arbitrary on hash containers.
const ITER_FNS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
];

/// Chain adapters that keep a lock-guard expression "still the guard"
/// (poison handling and friends), for deciding `let g = x.lock()...;`.
const GUARD_ADAPTERS: [&str; 5] = ["unwrap", "expect", "unwrap_or_else", "map_err", "into_inner"];

/// Consumers that make iteration order irrelevant (or explicitly restore
/// order) when they appear later in the same statement.
fn order_normalizing(text: &str) -> bool {
    text.starts_with("sort")
        || text.starts_with("BTree")
        || text.starts_with("min")
        || text.starts_with("max")
        || matches!(text, "count" | "len" | "all" | "any" | "sum" | "contains")
}

fn finding(ctx: &FileCtx, rule: &'static str, line: u32, message: String) -> Finding {
    Finding { rule, path: ctx.path.clone(), line, message }
}

/// Walks back from code index `j` over `ident`, `ident.ident`, and
/// trailing `[...]` index groups to the base identifier of a receiver
/// expression. Returns the dotted path (`self.writer`, `shared.batch`)
/// and the code index of its first token.
fn receiver(ctx: &FileCtx, mut j: usize) -> Option<(String, usize)> {
    let mut parts: Vec<&str> = Vec::new();
    loop {
        // Skip a trailing index group: `adj[v as usize]` → `adj`.
        while ctx.get(j).is_some_and(|t| t.is_punct(']')) {
            let mut depth = 0i32;
            loop {
                let t = ctx.get(j)?;
                if t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        }
        let t = ctx.get(j)?;
        if t.kind != crate::lexer::TokKind::Ident || (is_keyword(t.text) && t.text != "self") {
            return None;
        }
        parts.push(t.text);
        if j >= 2 && ctx.ct(j - 1).is_punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    parts.reverse();
    Some((parts.join("."), j))
}

/// Rule 1: nondeterministic iteration over `HashMap`/`HashSet`.
pub(crate) fn nondet_iter(ctx: &FileCtx, out: &mut Vec<Finding>) {
    // Pass A: names whose declared type or initializer mentions a hash
    // container — `let`/field/param declarations with `: …HashMap…`,
    // untyped `let name = …HashMap::…` initializers, and `let name =
    // f(…)` bindings where `f` is a same-file function whose declared
    // return type mentions one (Pass A0 below).
    let mut hashy: BTreeSet<&str> = BTreeSet::new();
    let is_hash =
        |ci: usize| ctx.get(ci).is_some_and(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));

    // Pass A0: functions declared `fn name(…) -> …HashMap…`. Calling one
    // in a `let` initializer (free or as a method, `recv.name(…)`) makes
    // the binding hashy even though no hash type appears at the call site.
    let mut hash_fns: BTreeSet<&str> = BTreeSet::new();
    for ci in 0..ctx.len() {
        if ctx.excluded[ci] || !ctx.ct(ci).is_ident("fn") {
            continue;
        }
        let Some(name) = ctx
            .get(ci + 1)
            .filter(|n| n.kind == crate::lexer::TokKind::Ident && !is_keyword(n.text))
        else {
            continue;
        };
        // Parameter list (first `(` past any generics), then `-> Type`.
        let mut open = ci + 2;
        while ctx.get(open).is_some_and(|n| !n.is_punct('(')) && open <= ci + 64 {
            open += 1;
        }
        if !ctx.get(open).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let close = ctx.matching(open, '(', ')');
        if !(ctx.get(close + 1).is_some_and(|n| n.is_punct('-'))
            && ctx.get(close + 2).is_some_and(|n| n.is_punct('>')))
        {
            continue;
        }
        let mut j = close + 3;
        while let Some(n) = ctx.get(j) {
            if n.is_punct('{') || n.is_punct(';') || n.is_ident("where") || j > close + 48 {
                break;
            }
            if is_hash(j) {
                hash_fns.insert(name.text);
                break;
            }
            j += 1;
        }
    }

    for ci in 0..ctx.len() {
        if ctx.excluded[ci] {
            continue;
        }
        let t = ctx.ct(ci);
        // `name : Type` where the colon is single (not a `::` path).
        if t.kind == crate::lexer::TokKind::Ident
            && !is_keyword(t.text)
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct(':'))
            && !ctx.get(ci + 2).is_some_and(|n| n.is_punct(':'))
            && !(ci > 0 && ctx.ct(ci - 1).is_punct(':'))
        {
            let mut j = ci + 2;
            while let Some(n) = ctx.get(j) {
                if n.is_punct(',')
                    || n.is_punct(';')
                    || n.is_punct('=')
                    || n.is_punct(')')
                    || n.is_punct('{')
                    || n.is_punct('}')
                    || j > ci + 48
                {
                    break;
                }
                if is_hash(j) {
                    hashy.insert(t.text);
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = <init containing HashMap/HashSet>`.
        if t.is_ident("let") {
            let mut k = ci + 1;
            if ctx.get(k).is_some_and(|n| n.is_ident("mut")) {
                k += 1;
            }
            let named = ctx
                .get(k)
                .filter(|n| n.kind == crate::lexer::TokKind::Ident && !is_keyword(n.text));
            if let Some(name) = named {
                if ctx.get(k + 1).is_some_and(|n| n.is_punct('=')) {
                    let mut j = k + 2;
                    let mut depth = 0i32;
                    while let Some(n) = ctx.get(j) {
                        if n.is_punct('(') || n.is_punct('[') || n.is_punct('{') {
                            depth += 1;
                        } else if n.is_punct(')') || n.is_punct(']') || n.is_punct('}') {
                            depth -= 1;
                        } else if n.is_punct(';') && depth <= 0 {
                            break;
                        }
                        // A hash type in the initializer, or a call to a
                        // function known (Pass A0) to return one.
                        let calls_hash_fn = n.kind == crate::lexer::TokKind::Ident
                            && hash_fns.contains(n.text)
                            && ctx.get(j + 1).is_some_and(|p| p.is_punct('('));
                        if is_hash(j) || calls_hash_fn {
                            hashy.insert(name.text);
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
    }

    // Pass B: flag iterations over tracked names.
    for ci in 0..ctx.len() {
        if ctx.excluded[ci] {
            continue;
        }
        let t = ctx.ct(ci);
        // `name.iter()` / `self.field.keys()` / `adj[i].values()` chains.
        if t.kind == crate::lexer::TokKind::Ident
            && ITER_FNS.contains(&t.text)
            && ci >= 2
            && ctx.ct(ci - 1).is_punct('.')
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some((name, _)) = receiver(ctx, ci - 2) {
                let base = name.rsplit('.').next().unwrap_or(&name);
                if hashy.contains(base) && !normalized_later(ctx, ci) {
                    out.push(finding(
                        ctx,
                        rule::NONDET_ITER,
                        t.line,
                        format!(
                            "`.{}()` on hash container `{name}` iterates in nondeterministic \
                             order; use a BTreeMap/BTreeSet, sort the results, or justify with \
                             `ctlint::allow(nondet-iter)`",
                            t.text
                        ),
                    ));
                }
            }
        }
        // `for pat in [&]name…` loops.
        if t.is_ident("for") {
            if let Some(f) = for_loop_over_hash(ctx, ci, &hashy) {
                out.push(f);
            }
        }
    }
}

/// Checks whether the `for` loop at code index `ci` iterates a tracked
/// hash container directly (`for x in &map`, `for (k, v) in &adj[i]`).
fn for_loop_over_hash(ctx: &FileCtx, ci: usize, hashy: &BTreeSet<&str>) -> Option<Finding> {
    // Find the `in` at bracket depth 0 (patterns may contain `(k, v)`).
    let mut j = ci + 1;
    let mut depth = 0i32;
    let in_at = loop {
        let t = ctx.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') || t.is_punct(';') {
            return None; // not a for-loop header after all
        } else if t.is_ident("in") && depth == 0 {
            break j;
        }
        j += 1;
    };
    // Iterable: [&] [mut] name [.name]* [\[…\]] followed directly by `{`.
    let mut j = in_at + 1;
    while ctx.get(j).is_some_and(|t| t.is_punct('&') || t.is_ident("mut")) {
        j += 1;
    }
    let start = j;
    let base = ctx.get(j).filter(|t| {
        t.kind == crate::lexer::TokKind::Ident && (!is_keyword(t.text) || t.text == "self")
    })?;
    let mut name = String::from(base.text);
    j += 1;
    while ctx.get(j).is_some_and(|t| t.is_punct('.'))
        && ctx.get(j + 1).is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
    {
        name.push('.');
        name.push_str(ctx.ct(j + 1).text);
        j += 2;
    }
    if ctx.get(j).is_some_and(|t| t.is_punct('[')) {
        j = ctx.matching(j, '[', ']') + 1;
    }
    if !ctx.get(j).is_some_and(|t| t.is_punct('{')) {
        return None; // a method chain follows; the chain pattern handles it
    }
    let last = name.rsplit('.').next().unwrap_or(&name);
    if hashy.contains(last) {
        return Some(finding(
            ctx,
            rule::NONDET_ITER,
            ctx.ct(start).line,
            format!(
                "`for` loop over hash container `{name}` visits entries in nondeterministic \
                 order; use a BTreeMap/BTreeSet, sort first, or justify with \
                 `ctlint::allow(nondet-iter)`"
            ),
        ));
    }
    None
}

/// True if the rest of the statement consumes the iterator in an
/// order-insensitive way (`.count()`, `.sum()`, `collect::<BTreeMap…>`,
/// a `sort*` call, …).
fn normalized_later(ctx: &FileCtx, from: usize) -> bool {
    let mut depth = 0i32;
    for j in from..(from + 64).min(ctx.len()) {
        let t = ctx.ct(j);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if t.is_punct(';') && depth <= 0 {
            return false;
        } else if t.kind == crate::lexer::TokKind::Ident && order_normalizing(t.text) {
            return true;
        }
    }
    false
}

/// Rule 2: wall-clock reads (`Instant::now`, `SystemTime::now`).
pub(crate) fn wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for ci in 0..ctx.len() {
        if ctx.excluded[ci] {
            continue;
        }
        let t = ctx.ct(ci);
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct(':'))
            && ctx.get(ci + 2).is_some_and(|n| n.is_punct(':'))
            && ctx.get(ci + 3).is_some_and(|n| n.is_ident("now"))
        {
            out.push(finding(
                ctx,
                rule::WALL_CLOCK,
                t.line,
                format!(
                    "`{}::now()` in a deterministic module: wall-clock reads belong in \
                     benchmarks/metrics/latency accounting, not kernels; move the timing out \
                     or justify with `ctlint::allow(wall-clock)`",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 3: panic sources on the panic-free serve path.
pub(crate) fn panic_path(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for ci in 0..ctx.len() {
        if ctx.excluded[ci] {
            continue;
        }
        let t = ctx.ct(ci);
        // `.unwrap()` / `.expect(…)`.
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && ci >= 1
            && ctx.ct(ci - 1).is_punct('.')
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(finding(
                ctx,
                rule::PANIC_PATH,
                t.line,
                format!(
                    "`.{}()` on the panic-free serve path; handle the error or justify with \
                     `ctlint::allow(panic-path)`",
                    t.text
                ),
            ));
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if (t.is_ident("panic")
            || t.is_ident("unreachable")
            || t.is_ident("todo")
            || t.is_ident("unimplemented"))
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(finding(
                ctx,
                rule::PANIC_PATH,
                t.line,
                format!(
                    "`{}!` on the panic-free serve path; return an error or justify with \
                     `ctlint::allow(panic-path)`",
                    t.text
                ),
            ));
        }
        // Bare indexing `expr[…]`: a `[` whose previous token ends an
        // expression. Keyword predecessors (`in [a, b]`), attributes
        // (`#[…]`), macros (`vec![…]`), types, and slice patterns all
        // have non-expression predecessors and stay silent.
        if t.is_punct('[') && ci >= 1 {
            let p = ctx.ct(ci - 1);
            let indexes_expr = (p.kind == crate::lexer::TokKind::Ident && !is_keyword(p.text))
                || p.is_punct(')')
                || p.is_punct(']');
            let full_range = ctx.get(ci + 1).is_some_and(|a| a.is_punct('.'))
                && ctx.get(ci + 2).is_some_and(|a| a.is_punct('.'))
                && ctx.get(ci + 3).is_some_and(|a| a.is_punct(']'));
            if indexes_expr && !full_range {
                out.push(finding(
                    ctx,
                    rule::PANIC_PATH,
                    t.line,
                    "bare indexing can panic on out-of-range input; use `.get()` and handle \
                     `None`, or justify with `ctlint::allow(panic-path)`"
                        .to_string(),
                ));
            }
        }
    }
}

/// Rule: `unsafe` audit. Crate roots listed in the config must carry
/// `#![forbid(unsafe_code)]`; any `unsafe` token anywhere is flagged.
pub(crate) fn forbid_unsafe(ctx: &FileCtx, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.forbid_unsafe_libs.iter().any(|p| p == &ctx.path) {
        let has_attr = (0..ctx.len()).any(|ci| {
            ctx.ct(ci).is_punct('#')
                && ctx.get(ci + 1).is_some_and(|t| t.is_punct('!'))
                && ctx.get(ci + 2).is_some_and(|t| t.is_punct('['))
                && ctx.get(ci + 3).is_some_and(|t| t.is_ident("forbid"))
                && ctx.get(ci + 4).is_some_and(|t| t.is_punct('('))
                && ctx.get(ci + 5).is_some_and(|t| t.is_ident("unsafe_code"))
        });
        if !has_attr {
            out.push(finding(
                ctx,
                rule::FORBID_UNSAFE,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`; every workspace crate \
                 forbids unsafe (vendored-stub interop exceptions need a justified allow)"
                    .to_string(),
            ));
        }
    }
    for ci in 0..ctx.len() {
        if !ctx.excluded[ci] && ctx.ct(ci).is_ident("unsafe") {
            out.push(finding(
                ctx,
                rule::FORBID_UNSAFE,
                ctx.ct(ci).line,
                "`unsafe` in a forbid(unsafe_code) workspace; remove it or justify with \
                 `ctlint::allow(forbid-unsafe)`"
                    .to_string(),
            ));
        }
    }
}

/// One observed "guard on `first` was live when `second` was acquired"
/// event, collected across files and resolved in
/// [`ordering_conflicts`].
#[derive(Debug, Clone)]
pub(crate) struct LockEdge {
    pub first: String,
    pub second: String,
    pub path: String,
    pub line: u32,
}

/// A live lock guard inside one function body.
struct Guard {
    name: Option<String>,
    recv: String,
    line: u32,
    /// Brace depth the guard's binding lives at; popped when the scope
    /// closes (or, for statement temporaries, at the next `;`).
    depth: i32,
    temp: bool,
}

/// An in-progress `let [mut] name = …;` whose initializer we are inside.
struct LetCtx {
    name: String,
    depth: i32,
    /// First initializer token is `loop`/`match` — the try-lock-loop
    /// idiom, where the guard escapes via `break`.
    init_kw: bool,
    bound: bool,
}

/// Rule 4: lock discipline. Tracks guard bindings per function; flags
/// same-receiver nesting and guards held across planner/apply calls;
/// records acquisition-order edges for cross-file conflict resolution.
pub(crate) fn lock_discipline(
    ctx: &FileCtx,
    cfg: &Config,
    out: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let mut ci = 0;
    while ci < ctx.len() {
        if !ctx.excluded[ci]
            && ctx.ct(ci).is_ident("fn")
            && ctx.get(ci + 1).is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
        {
            // Find the body `{` (first one at paren depth 0) or a `;`.
            let mut j = ci + 2;
            let mut paren = 0i32;
            let body = loop {
                match ctx.get(j) {
                    None => break None,
                    Some(t) if t.is_punct('(') => paren += 1,
                    Some(t) if t.is_punct(')') => paren -= 1,
                    Some(t) if t.is_punct(';') && paren == 0 => break None,
                    Some(t) if t.is_punct('{') && paren == 0 => break Some(j),
                    _ => {}
                }
                j += 1;
            };
            if let Some(open) = body {
                let close = ctx.matching(open, '{', '}');
                scan_fn_body(ctx, cfg, open, close, out, edges);
                ci = close + 1;
                continue;
            }
            ci = j + 1;
            continue;
        }
        ci += 1;
    }
}

/// True iff the lock call whose closing `)` is at code index `close_at`
/// is the final value of its statement (modulo poison-handling
/// adapters): `let g = x.lock().unwrap();` but not
/// `let n = x.lock().unwrap().paths.len();`.
fn chain_final(ctx: &FileCtx, close_at: usize) -> bool {
    let mut j = close_at + 1;
    loop {
        match ctx.get(j) {
            Some(t) if t.is_punct(';') => return true,
            Some(t) if t.is_punct('.') => {
                let adapter = ctx.get(j + 1).is_some_and(|n| GUARD_ADAPTERS.contains(&n.text))
                    && ctx.get(j + 2).is_some_and(|n| n.is_punct('('));
                if !adapter {
                    return false;
                }
                j = ctx.matching(j + 2, '(', ')') + 1;
            }
            _ => return false,
        }
    }
}

fn scan_fn_body(
    ctx: &FileCtx,
    cfg: &Config,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
    edges: &mut Vec<LockEdge>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut lets: Vec<LetCtx> = Vec::new();
    let mut depth = 1i32;
    let mut ci = open + 1;
    while ci < close {
        let t = ctx.ct(ci);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if t.is_punct(';') {
            guards.retain(|g| !(g.temp && g.depth >= depth));
            lets.retain(|l| l.depth < depth);
        } else if t.is_ident("let") {
            let mut k = ci + 1;
            if ctx.get(k).is_some_and(|n| n.is_ident("mut")) {
                k += 1;
            }
            let name = ctx
                .get(k)
                .filter(|n| n.kind == crate::lexer::TokKind::Ident && !is_keyword(n.text));
            if let Some(name) = name {
                // Skip an optional `: Type` annotation to the `=`.
                let mut e = k + 1;
                while ctx
                    .get(e)
                    .is_some_and(|n| !n.is_punct('=') && !n.is_punct(';') && !n.is_punct('{'))
                {
                    e += 1;
                }
                if ctx.get(e).is_some_and(|n| n.is_punct('=')) {
                    let init_kw =
                        ctx.get(e + 1).is_some_and(|n| n.is_ident("loop") || n.is_ident("match"));
                    lets.push(LetCtx { name: name.text.to_string(), depth, init_kw, bound: false });
                }
            }
        } else if t.is_ident("drop")
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct('('))
            && ctx.get(ci + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(dropped) = ctx.get(ci + 2) {
                guards.retain(|g| g.name.as_deref() != Some(dropped.text));
            }
        } else if matches!(t.text, "lock" | "try_lock" | "read" | "write")
            && t.kind == crate::lexer::TokKind::Ident
            && ci >= 2
            && ctx.ct(ci - 1).is_punct('.')
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct('('))
            && ctx.get(ci + 2).is_some_and(|n| n.is_punct(')'))
        {
            let recv = receiver(ctx, ci - 2).map(|(r, _)| r).unwrap_or_else(|| "<expr>".into());
            for g in &guards {
                if g.recv == recv {
                    out.push(finding(
                        ctx,
                        rule::LOCK_DISCIPLINE,
                        t.line,
                        format!(
                            "nested acquisition of `{recv}` while a guard on it from line {} \
                             is still live (self-deadlock risk)",
                            g.line
                        ),
                    ));
                } else {
                    edges.push(LockEdge {
                        first: g.recv.clone(),
                        second: recv.clone(),
                        path: ctx.path.clone(),
                        line: t.line,
                    });
                }
            }
            // Bind to the innermost unbound `let` (plain guard chain or
            // the `let g = loop { … try_lock … }` idiom); else it is a
            // statement temporary.
            let bindable = lets.last_mut().filter(|l| !l.bound);
            let guard = match bindable {
                Some(l) if l.init_kw || chain_final(ctx, ci + 2) => {
                    l.bound = true;
                    Guard {
                        name: Some(l.name.clone()),
                        recv,
                        line: t.line,
                        depth: l.depth,
                        temp: false,
                    }
                }
                _ => Guard { name: None, recv, line: t.line, depth, temp: true },
            };
            guards.push(guard);
        } else if t.kind == crate::lexer::TokKind::Ident
            && cfg.heavy_calls.iter().any(|h| h == t.text)
            && ctx.get(ci + 1).is_some_and(|n| n.is_punct('('))
            && !(ci > 0 && ctx.ct(ci - 1).is_ident("fn"))
            && !guards.is_empty()
        {
            let held: Vec<String> =
                guards.iter().map(|g| format!("`{}` (line {})", g.recv, g.line)).collect();
            out.push(finding(
                ctx,
                rule::LOCK_DISCIPLINE,
                t.line,
                format!(
                    "call to `{}()` while holding lock guard(s) on {}: planner/apply work \
                     under a lock stalls the commit queue; drop the guard first or justify \
                     with `ctlint::allow(lock-discipline)`",
                    t.text,
                    held.join(", ")
                ),
            ));
        }
        ci += 1;
    }
}

/// Resolves collected acquisition-order edges: if both `A → B` and
/// `B → A` exist anywhere in the workspace, every site of the pair is a
/// potential deadlock and gets a finding.
pub(crate) fn ordering_conflicts(edges: &[LockEdge]) -> Vec<Finding> {
    let mut directions: BTreeMap<(String, String), Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        directions.entry((e.first.clone(), e.second.clone())).or_default().push(e);
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for ((a, b), sites) in &directions {
        let reverse = directions.get(&(b.clone(), a.clone()));
        let Some(reverse) = reverse else { continue };
        for e in sites {
            if !seen.insert((e.path.clone(), e.line)) {
                continue;
            }
            let r = reverse[0];
            out.push(Finding {
                rule: rule::LOCK_DISCIPLINE,
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "lock order conflict: `{a}` is held while acquiring `{b}` here, but \
                     {}:{} acquires them in the opposite order (deadlock risk); pick one \
                     global order or justify with `ctlint::allow(lock-discipline)`",
                    r.path, r.line
                ),
            });
        }
    }
    out
}
