//! Stop site selection for an under-served city (paper §8 future work).
//!
//! A small city with sparse transit: trajectories reveal where people
//! actually travel, and most of that demand is far from any existing stop.
//! Site selection places new stops to cover the unmet demand while staying
//! linkable into the existing network.
//!
//! ```sh
//! cargo run --release --example site_selection
//! ```

use ct_bus::core::{select_sites, SiteParams};
use ct_bus::data::{CityConfig, DemandModel};

fn main() {
    // Sparse transit: only 3 routes for a whole town.
    let city = CityConfig::small().routes(3).trajectories(400).seed(61).generate();
    let demand = DemandModel::from_city(&city);
    let stats = city.stats();
    println!(
        "city: {} road nodes, {} stops on {} routes, |D| = {}",
        stats.road_nodes, stats.stops, stats.routes, stats.trajectories
    );
    println!("total demand weight: {:.0}\n", demand.total_weight());

    for (label, w) in [("demand-first (w=1.0)", 1.0), ("balanced (w=0.7)", 0.7)] {
        let params = SiteParams { num_sites: 6, w, ..Default::default() };
        let sel = select_sites(&city, &demand, &params);
        println!("{label}: {} candidate nodes considered", sel.candidates);
        for (i, s) in sel.sites.iter().enumerate() {
            let p = city.road.position(s.road_node);
            println!(
                "  site {}: road node {:>4} at ({:>6.0}, {:>6.0}) — marginal demand {:>7.0}, \
                 connectivity potential {:.2}",
                i + 1,
                s.road_node,
                p.x,
                p.y,
                s.marginal_demand,
                s.conn_potential
            );
        }
        println!(
            "  → covers {:.0} demand ({:.1}% of the corpus)\n",
            sel.covered_demand,
            sel.coverage_fraction * 100.0
        );
    }
}
