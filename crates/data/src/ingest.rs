//! City-scale GTFS ingestion: shared snap index, city-wide hop-path cache,
//! streaming `stop_times.txt`.
//!
//! [`crate::gtfs::GtfsFeed::into_transit`] is a one-shot convenience: it
//! rebuilds the road-node spatial index and forgets every realized hop path
//! as soon as it returns. That is fine for a single import and wasteful for
//! the paper's real workload (§7.1.1) — many feeds (or many revisions of
//! one feed) against a single road network, where routes share corridors
//! heavily. This module is the reusable pipeline:
//!
//! * [`SnapIndex`] — one [`ct_spatial::GridIndex`] over the road nodes,
//!   built once per road network and shared across imports, with a
//!   configurable snap radius (`max_snap_m`) so a stop far outside the
//!   network is *dropped* instead of snapping to an arbitrary border node
//!   and fabricating absurd hops;
//! * [`HopPathCache`] — road shortest paths keyed by canonical road-node
//!   pair, shared across **all** routes and persistent across imports, so
//!   each unique corridor runs Dijkstra exactly once (counted in
//!   [`HopCacheStats`]); realization fans out over
//!   [`ct_graph::shortest_paths_batch`]. The cache is internally
//!   synchronized (`&self` everywhere, counters atomic), so one
//!   `Arc<HopPathCache>` can back concurrent imports on a serving host —
//!   see [`GtfsIngest::with_shared_cache`];
//! * [`GtfsIngest`] — ties both to a road network and drives imports,
//!   either from a parsed [`GtfsFeed`] ([`GtfsIngest::import`]) or
//!   streaming straight from a feed directory
//!   ([`GtfsIngest::import_dir`]), which never materializes the full
//!   `stop_times.txt` table.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ct_graph::{shortest_paths_batch, RoadNetwork, TransitNetwork, TransitNetworkBuilder};
use ct_spatial::{GeoPoint, GridIndex, Point, Projection};

use crate::gtfs::{
    parse_routes, parse_stops, parse_trips, GtfsError, GtfsFeed, GtfsImportStats, GtfsStop,
    StopTimesReader,
};

/// Cell size of the road-node snap grid, meters.
pub const DEFAULT_SNAP_CELL_M: f64 = 250.0;

/// Default snap radius: a GTFS stop farther than this from every road node
/// is dropped rather than snapped (paper's stop-spacing scale, τ = 500 m).
pub const DEFAULT_MAX_SNAP_M: f64 = 500.0;

/// A road-node spatial index built once per road network and shared across
/// imports, with a snap radius cap.
///
/// Replaces the `GridIndex::build(250.0, …)` that the importer used to run
/// inside every call, and fixes the unbounded-`nearest` bug: the plain
/// index *always* resolves, so a stop 50 km outside the network would snap
/// to a border node and fabricate absurd hops.
#[derive(Debug, Clone)]
pub struct SnapIndex {
    index: GridIndex,
    max_snap_m: f64,
}

impl SnapIndex {
    /// Builds the index over `road`'s nodes with [`DEFAULT_MAX_SNAP_M`].
    pub fn build(road: &RoadNetwork) -> Self {
        SnapIndex {
            index: GridIndex::build(DEFAULT_SNAP_CELL_M, road.positions()),
            max_snap_m: DEFAULT_MAX_SNAP_M,
        }
    }

    /// Overrides the snap radius (builder style). `f64::INFINITY` restores
    /// the legacy always-resolve behaviour.
    pub fn with_max_snap_m(mut self, max_snap_m: f64) -> Self {
        self.max_snap_m = max_snap_m;
        self
    }

    /// The configured snap radius, meters.
    pub fn max_snap_m(&self) -> f64 {
        self.max_snap_m
    }

    /// Nearest road node within the snap radius, as `(node, distance_m)`;
    /// `None` if every road node is farther than `max_snap_m`.
    pub fn snap(&self, p: &Point) -> Option<(u32, f64)> {
        let node = self.index.nearest_within(p, self.max_snap_m)?;
        Some((node, self.index.point(node).dist(p)))
    }
}

/// A realized corridor: `(path length, road edge ids)`; `None` when no
/// road path connects the pair.
type HopPath = Option<(f64, Vec<u32>)>;

/// Counters for [`HopPathCache`]: how much corridor reuse saved.
///
/// Accumulated atomically, so totals are **exact** however many importer
/// threads share the cache — every corridor request lands in exactly one
/// counter, hence the conservation law `hits + dijkstra_runs == total
/// corridor requests` holds under any interleaving (tested). Two racing
/// batches that both miss the same corridor each count their own Dijkstra
/// run (the work really happened); sequential use keeps the strict
/// one-run-per-unique-corridor accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopCacheStats {
    /// Dijkstra runs performed — one per unique corridor requested while it
    /// is resident (an evicted corridor re-runs on its next request; with
    /// an unbounded cache and a single importer this is exactly one per
    /// unique corridor, ever).
    pub dijkstra_runs: usize,
    /// Corridor requests answered from the cache (within a batch, across
    /// routes, or across imports).
    pub hits: usize,
    /// Unique corridors with no connecting road path.
    pub unroutable: usize,
    /// Corridors dropped by the entry cap (see
    /// [`HopPathCache::with_max_entries`]); `0` when unbounded.
    pub evictions: usize,
}

/// Atomic accumulators behind [`HopCacheStats`]. Relaxed ordering is
/// enough: the counters carry no cross-thread happens-before obligations,
/// only totals, and `fetch_add` never loses an increment.
#[derive(Debug, Default)]
struct CacheCounters {
    dijkstra_runs: AtomicUsize,
    hits: AtomicUsize,
    unroutable: AtomicUsize,
    evictions: AtomicUsize,
}

impl CacheCounters {
    fn snapshot(&self) -> HopCacheStats {
        HopCacheStats {
            dijkstra_runs: self.dijkstra_runs.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            unroutable: self.unroutable.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The map state of [`HopPathCache`], guarded by one mutex. The lock is
/// held only for map surgery — never across a Dijkstra batch.
#[derive(Debug, Default)]
struct CacheInner {
    /// Canonical pair → realized path. Geometry is stored in the
    /// orientation of the corridor's first realization (matching what the
    /// pre-refactor importer put on the first transit edge using it).
    paths: HashMap<(u32, u32), HopPath>,
    /// Realization order of resident corridors (front = oldest), used for
    /// eviction when bounded.
    order: std::collections::VecDeque<(u32, u32)>,
}

/// A city-wide cache of realized hop paths, keyed by canonical (unordered)
/// road-node pair.
///
/// The pre-refactor importer memoized Dijkstra **per route**, so corridors
/// shared between routes — the common case in any real network — re-ran
/// it once per route. This cache is shared across all routes of all
/// imports it lives through: each unique corridor costs exactly one
/// Dijkstra while resident (asserted by `HopCacheStats::dijkstra_runs`).
///
/// By default the cache is unbounded. Long-lived servers importing many
/// feeds should cap it with [`HopPathCache::with_max_entries`]: beyond the
/// cap the **oldest-realized** corridor is dropped first (FIFO — corridor
/// popularity is dominated by feed locality, so age is a good proxy), and
/// every drop is counted in [`HopCacheStats::evictions`].
///
/// **Thread safety.** Every method takes `&self`: the maps sit behind one
/// mutex (held only for map surgery, never across a Dijkstra batch) and
/// the counters are atomic, so a single `Arc<HopPathCache>` serves any
/// number of concurrent importers with exact totals. Callers consume a
/// batch through the value [`HopPathCache::realize`] *returns* — never
/// through follow-up [`HopPathCache::path`] lookups — so a concurrent
/// batch enforcing the cap can never yank a corridor out from under the
/// import that just realized it.
#[derive(Debug, Default)]
pub struct HopPathCache {
    inner: Mutex<CacheInner>,
    /// Entry cap; `0` = unbounded. Fixed at construction.
    max_entries: usize,
    stats: CacheCounters,
}

impl Clone for HopPathCache {
    /// Deep-copies the resident corridors and the counter values; the
    /// clone is an independent cache (shared use goes through `Arc`, not
    /// `Clone`).
    fn clone(&self) -> Self {
        let inner = self.inner.lock().expect("hop cache poisoned");
        let stats = self.stats.snapshot();
        HopPathCache {
            inner: Mutex::new(CacheInner {
                paths: inner.paths.clone(),
                order: inner.order.clone(),
            }),
            max_entries: self.max_entries,
            stats: CacheCounters {
                dijkstra_runs: AtomicUsize::new(stats.dijkstra_runs),
                hits: AtomicUsize::new(stats.hits),
                unroutable: AtomicUsize::new(stats.unroutable),
                evictions: AtomicUsize::new(stats.evictions),
            },
        }
    }
}

impl HopPathCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the cache at `max_entries` corridors (builder style; `0` =
    /// unbounded). The cap is enforced at the **start** of each
    /// [`HopPathCache::realize`] batch — never mid-batch — so corridors the
    /// current batch realized stay resident until their caller has read
    /// them; a single batch may therefore transiently exceed the cap by
    /// its own working-set size. Evicted corridors re-run Dijkstra on
    /// their next request.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        let inner = self.inner.get_mut().expect("hop cache poisoned");
        Self::enforce_cap(inner, max_entries, &self.stats);
        self
    }

    /// The configured entry cap (`0` = unbounded).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    fn enforce_cap(inner: &mut CacheInner, max_entries: usize, stats: &CacheCounters) {
        if max_entries == 0 {
            return;
        }
        while inner.paths.len() > max_entries {
            let oldest = inner.order.pop_front().expect("order tracks every resident corridor");
            inner.paths.remove(&oldest);
            stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn key(a: u32, b: u32) -> (u32, u32) {
        (a.min(b), a.max(b))
    }

    /// Number of unique corridors realized so far (routable or not).
    pub fn unique_corridors(&self) -> usize {
        self.inner.lock().expect("hop cache poisoned").paths.len()
    }

    /// Reuse/miss counters (an atomic point-in-time snapshot).
    pub fn stats(&self) -> HopCacheStats {
        self.stats.snapshot()
    }

    /// The realized path for corridor `(a, b)`, if it is resident and
    /// routable. An owned copy: residency is only guaranteed at the moment
    /// of the call (a concurrent capped batch may evict afterwards), so no
    /// reference into the cache can be handed out.
    pub fn path(&self, a: u32, b: u32) -> Option<(f64, Vec<u32>)> {
        self.inner
            .lock()
            .expect("hop cache poisoned")
            .paths
            .get(&Self::key(a, b))
            .and_then(|p| p.clone())
    }

    /// Whether corridor `(a, b)` is resident (routable or not).
    pub fn contains(&self, a: u32, b: u32) -> bool {
        self.inner.lock().expect("hop cache poisoned").paths.contains_key(&Self::key(a, b))
    }

    /// Ensures every corridor in `wanted` is realized, running the missing
    /// ones through [`shortest_paths_batch`] over `threads` workers (`0` =
    /// all cores), and returns the resolved path for **each** `wanted`
    /// entry, in order (`None` = unroutable).
    ///
    /// Corridors may repeat (the importer feeds every hop of every route);
    /// each is realized at most once per batch, in the orientation of its
    /// first occurrence, and every avoided run counts as a hit. Results
    /// merge by corridor key, so the cache contents are invariant under
    /// thread count. Work with the returned vector, not follow-up
    /// [`HopPathCache::path`] calls: the return value is immune to
    /// evictions by concurrent batches.
    ///
    /// Concurrency: the lock is released while Dijkstra runs, so racing
    /// batches overlap their compute. Two batches that both miss the same
    /// corridor both run it (both runs are counted; the first merge wins
    /// residency) — the conservation law `hits + dijkstra_runs == total
    /// requests` stays exact either way.
    pub fn realize(
        &self,
        road: &RoadNetwork,
        wanted: &[(u32, u32)],
        threads: usize,
    ) -> Vec<HopPath> {
        // Phase 1 (locked): trim to the cap *before* realizing — so this
        // batch's corridors stay resident for its duration — and split
        // `wanted` into resident (resolved now, immune to later eviction)
        // and missing (first-occurrence orientation).
        let mut resolved: Vec<Option<HopPath>> = Vec::with_capacity(wanted.len());
        let mut missing: Vec<(u32, u32)> = Vec::new();
        let mut queued: HashMap<(u32, u32), usize> = HashMap::new();
        let mut hits = 0usize;
        {
            let mut inner = self.inner.lock().expect("hop cache poisoned");
            Self::enforce_cap(&mut inner, self.max_entries, &self.stats);
            for &(a, b) in wanted {
                let key = Self::key(a, b);
                if let Some(path) = inner.paths.get(&key) {
                    hits += 1;
                    resolved.push(Some(path.clone()));
                } else {
                    match queued.entry(key) {
                        Entry::Occupied(_) => hits += 1, // repeat within this batch
                        Entry::Vacant(slot) => {
                            slot.insert(missing.len());
                            missing.push((a, b));
                        }
                    }
                    resolved.push(None); // filled from `computed` in phase 3
                }
            }
        }
        self.stats.hits.fetch_add(hits, Ordering::Relaxed);
        if missing.is_empty() {
            return resolved.into_iter().map(|p| p.expect("all resident")).collect();
        }

        // Phase 2 (unlocked): the expensive part.
        let results = shortest_paths_batch(road, &missing, threads);
        self.stats.dijkstra_runs.fetch_add(missing.len(), Ordering::Relaxed);
        let computed: Vec<HopPath> = missing
            .iter()
            .zip(results)
            .map(|(_, result)| match result {
                Some(p) => Some((p.dist, p.edges)),
                None => {
                    self.stats.unroutable.fetch_add(1, Ordering::Relaxed);
                    None
                }
            })
            .collect();

        // Phase 3 (locked): merge. A corridor a racing batch inserted
        // meanwhile keeps the racer's entry (first realization wins,
        // including its orientation — the single-importer rule, extended).
        {
            let mut inner = self.inner.lock().expect("hop cache poisoned");
            for (&(a, b), stored) in missing.iter().zip(&computed) {
                let key = Self::key(a, b);
                if let Entry::Vacant(slot) = inner.paths.entry(key) {
                    slot.insert(stored.clone());
                    inner.order.push_back(key);
                }
            }
        }
        resolved
            .into_iter()
            .zip(wanted)
            .map(|(path, &(a, b))| match path {
                Some(path) => path,
                None => computed[queued[&Self::key(a, b)]].clone(),
            })
            .collect()
    }
}

/// Reusable GTFS import pipeline for one road network: shared [`SnapIndex`],
/// persistent [`HopPathCache`], parallel hop realization.
///
/// ```
/// use ct_data::{CityConfig, GtfsFeed, GtfsIngest};
/// use ct_spatial::{GeoPoint, Projection};
///
/// let city = CityConfig::small().seed(3).generate();
/// let proj = Projection::new(GeoPoint::new(41.85, -87.65));
/// let feed = GtfsFeed::from_transit(&city.transit, &proj);
///
/// let mut ingest = GtfsIngest::new(&city.road);
/// let (net, stats) = ingest.import(&feed, &proj).unwrap();
/// assert_eq!(net.num_stops(), stats.stops);
/// // Every unique corridor ran Dijkstra exactly once.
/// assert_eq!(ingest.cache().stats().dijkstra_runs, ingest.cache().unique_corridors());
/// // A re-import answers every hop from the cache.
/// let runs = ingest.cache().stats().dijkstra_runs;
/// ingest.import(&feed, &proj).unwrap();
/// assert_eq!(ingest.cache().stats().dijkstra_runs, runs);
/// ```
#[derive(Debug)]
pub struct GtfsIngest<'a> {
    road: &'a RoadNetwork,
    snap: SnapIndex,
    /// Shared so several importer threads can pool one city-wide cache
    /// ([`GtfsIngest::with_shared_cache`]); a solo pipeline is simply the
    /// `Arc`'s only holder.
    cache: Arc<HopPathCache>,
    threads: usize,
}

impl<'a> GtfsIngest<'a> {
    /// Builds the pipeline for `road`: snap index with
    /// [`DEFAULT_MAX_SNAP_M`], empty cache, all cores.
    pub fn new(road: &'a RoadNetwork) -> Self {
        GtfsIngest {
            road,
            snap: SnapIndex::build(road),
            cache: Arc::new(HopPathCache::new()),
            threads: 0,
        }
    }

    /// Overrides the snap radius (builder style).
    pub fn with_max_snap_m(mut self, max_snap_m: f64) -> Self {
        self.snap = self.snap.with_max_snap_m(max_snap_m);
        self
    }

    /// Caps the hop-path cache at `max_entries` corridors (builder style;
    /// `0` = unbounded, the default). Long-lived servers importing many
    /// feeds should set this so the cache cannot grow without bound; see
    /// [`HopPathCache::with_max_entries`] for the eviction policy.
    /// Replaces the pipeline's cache with a fresh capped one — call it at
    /// construction, before anything is realized.
    pub fn with_cache_cap(mut self, max_entries: usize) -> Self {
        self.cache = Arc::new(HopPathCache::new().with_max_entries(max_entries));
        self
    }

    /// Attaches an existing (possibly already warm) cache, typically one
    /// `Arc` shared by several importer pipelines on a serving host:
    /// concurrent imports then pool their realized corridors, and
    /// [`HopCacheStats`] totals stay exact across all of them (builder
    /// style).
    pub fn with_shared_cache(mut self, cache: Arc<HopPathCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Overrides the worker-thread count for hop realization (builder
    /// style). `0` means all available cores — the same convention as
    /// `ct_core::Parallelism`, whose `worker_threads()` value callers
    /// plumbing the workspace-wide knob should pass here. Never affects
    /// results (corridors merge by key).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The shared snap index.
    pub fn snap_index(&self) -> &SnapIndex {
        &self.snap
    }

    /// The city-wide hop-path cache (persistent across imports).
    pub fn cache(&self) -> &HopPathCache {
        &self.cache
    }

    /// A shared handle onto the cache, for pooling it across pipelines
    /// (see [`GtfsIngest::with_shared_cache`]).
    pub fn shared_cache(&self) -> Arc<HopPathCache> {
        Arc::clone(&self.cache)
    }

    /// Imports a parsed feed. See [`GtfsFeed::into_transit`] for the
    /// robustness rules; unlike that convenience, the snap index and hop
    /// cache persist for the next import.
    pub fn import(
        &mut self,
        feed: &GtfsFeed,
        projection: &Projection,
    ) -> Result<(TransitNetwork, GtfsImportStats), GtfsError> {
        let sequences = feed.route_stop_sequences()?;
        self.assemble(&feed.stops, &sequences, projection)
    }

    /// Imports a feed directory, streaming `stop_times.txt` through
    /// [`StopTimesReader`] — the full table is never materialized, so peak
    /// memory beyond the (small) other tables is one in-flight trip group
    /// plus each route's current representative sequence.
    ///
    /// Produces bit-identical output to `GtfsFeed::load_dir` +
    /// [`GtfsIngest::import`] for feeds whose `stop_times.txt` is grouped
    /// by `trip_id` (the GTFS norm). A trip whose records are scattered
    /// across non-adjacent blocks raises [`GtfsError::BadRecord`] telling
    /// the caller to use the eager path.
    pub fn import_dir(
        &mut self,
        dir: impl AsRef<Path>,
        projection: &Projection,
    ) -> Result<(TransitNetwork, GtfsImportStats), GtfsError> {
        let dir = dir.as_ref();
        let open = |name: &str| -> Result<std::io::BufReader<std::fs::File>, GtfsError> {
            Ok(std::io::BufReader::new(std::fs::File::open(dir.join(name))?))
        };
        let stops = parse_stops(open("stops.txt")?)?;
        let routes = parse_routes(open("routes.txt")?)?;
        let trips = parse_trips(open("trips.txt")?)?;

        // Mirror `route_stop_sequences`' reference validation. A trip id
        // listed for several routes (duplicate trips.txt rows) makes its
        // records a representative candidate for each, as in the eager path.
        let route_ids: HashSet<&str> = routes.iter().map(|r| r.id.as_str()).collect();
        let mut trip_info: HashMap<&str, Vec<(usize, &str)>> = HashMap::new();
        for (i, trip) in trips.iter().enumerate() {
            if !route_ids.contains(trip.route_id.as_str()) {
                return Err(GtfsError::DanglingReference {
                    kind: "route",
                    id: trip.route_id.clone(),
                });
            }
            trip_info.entry(trip.id.as_str()).or_default().push((i, trip.route_id.as_str()));
        }
        let stop_ids: HashSet<&str> = stops.iter().map(|s| s.id.as_str()).collect();

        // One pass over stop_times: keep only each route's best (longest,
        // earliest-in-trips.txt on ties) representative so far, as
        // `(trips.txt index, records)`.
        type RepTrip = (usize, Vec<(u32, String)>);
        let mut best: HashMap<&str, RepTrip> = HashMap::new();
        let mut closed: HashSet<String> = HashSet::new();
        for group in StopTimesReader::new(open("stop_times.txt")?)? {
            let group = group?;
            for (_, stop_id) in &group.records {
                if !stop_ids.contains(stop_id.as_str()) {
                    return Err(GtfsError::DanglingReference { kind: "stop", id: stop_id.clone() });
                }
            }
            if !closed.insert(group.trip_id.clone()) {
                return Err(GtfsError::BadRecord {
                    file: "stop_times.txt",
                    line: group.line,
                    reason: format!(
                        "trip `{}` reappears after other trips; streaming import needs \
                         stop_times grouped by trip_id (load_dir + into_transit handles \
                         unsorted feeds)",
                        group.trip_id
                    ),
                });
            }
            let Some(info) = trip_info.get(group.trip_id.as_str()) else {
                continue; // records of trips absent from trips.txt are ignored
            };
            for &(trip_idx, route_id) in info {
                match best.entry(route_id) {
                    Entry::Vacant(slot) => {
                        slot.insert((trip_idx, group.records.clone()));
                    }
                    Entry::Occupied(mut slot) => {
                        let (cur_idx, cur) = slot.get();
                        if group.records.len() > cur.len()
                            || (group.records.len() == cur.len() && trip_idx < *cur_idx)
                        {
                            slot.insert((trip_idx, group.records.clone()));
                        }
                    }
                }
            }
        }

        let mut sequences = Vec::new();
        for route in &routes {
            let Some((_, records)) = best.get_mut(route.id.as_str()) else { continue };
            records.sort_by_key(|&(seq, _)| seq);
            let seq = records.iter().map(|(_, sid)| sid.clone()).collect();
            sequences.push((route.id.clone(), seq));
        }
        self.assemble(&stops, &sequences, projection)
    }

    /// Shared back half of both import paths: snap referenced stops,
    /// realize unique corridors in one parallel batch, split routes at
    /// unroutable hops, and build the network from the surviving pieces.
    fn assemble(
        &mut self,
        stops: &[GtfsStop],
        sequences: &[(String, Vec<String>)],
        projection: &Projection,
    ) -> Result<(TransitNetwork, GtfsImportStats), GtfsError> {
        let mut stats = GtfsImportStats::default();

        // Snap only stops some route references (referential hygiene: the
        // old importer added every stop in stops.txt, inflating the matrix
        // dimension with orphan zero-degree stops).
        let referenced: HashSet<&str> =
            sequences.iter().flat_map(|(_, seq)| seq.iter().map(String::as_str)).collect();
        let mut snapped: HashMap<&str, (u32, f64)> = HashMap::new();
        for stop in stops {
            if !referenced.contains(stop.id.as_str()) {
                stats.dropped_stops += 1;
                continue;
            }
            let p = projection.project(&GeoPoint::new(stop.lat, stop.lon));
            match self.snap.snap(&p) {
                Some(hit) => {
                    snapped.insert(stop.id.as_str(), hit);
                }
                None => stats.dropped_stops += 1,
            }
        }

        // Road-node sequences (consecutive stops sharing a snapped node
        // merge) and the corridors they need, in first-encounter order.
        let mut node_seqs: Vec<Vec<u32>> = Vec::with_capacity(sequences.len());
        let mut wanted: Vec<(u32, u32)> = Vec::new();
        for (_route_id, seq) in sequences {
            let mut nodes: Vec<u32> = Vec::with_capacity(seq.len());
            for gid in seq {
                let Some(&(node, _)) = snapped.get(gid.as_str()) else { continue };
                if nodes.last() != Some(&node) {
                    nodes.push(node);
                }
            }
            for w in nodes.windows(2) {
                wanted.push((w[0], w[1]));
            }
            node_seqs.push(nodes);
        }

        // One parallel Dijkstra per unique corridor, city-wide. This
        // import works off the *returned* batch from here on: a concurrent
        // import enforcing the cache cap may evict corridors at any time,
        // so later `cache.path()` lookups could miss what this batch just
        // realized.
        let resolved = self.cache.realize(self.road, &wanted, self.threads);
        let mut batch: HashMap<(u32, u32), HopPath> = HashMap::with_capacity(wanted.len());
        for (&(a, b), path) in wanted.iter().zip(resolved) {
            batch.entry((a.min(b), a.max(b))).or_insert(path);
        }
        let hop = |a: u32, b: u32| -> &HopPath { &batch[&(a.min(b), a.max(b))] };

        // Split each route at unroutable hops; pieces with ≥ 2 stops
        // survive and mark their nodes as used.
        let mut used: HashSet<u32> = HashSet::new();
        let mut route_pieces: Vec<Vec<Vec<u32>>> = Vec::with_capacity(node_seqs.len());
        for nodes in &node_seqs {
            let mut pieces: Vec<Vec<u32>> = Vec::new();
            let mut piece: Vec<u32> = Vec::new();
            for &node in nodes {
                if let Some(&prev) = piece.last() {
                    if hop(prev, node).is_none() {
                        stats.dropped_hops += 1;
                        pieces.push(std::mem::take(&mut piece));
                    }
                }
                piece.push(node);
            }
            pieces.push(piece);
            pieces.retain(|p| p.len() >= 2);
            for p in &pieces {
                used.extend(p.iter().copied());
            }
            route_pieces.push(pieces);
        }

        // Stops: stops.txt order, merged by road node, used nodes only.
        let mut builder = TransitNetworkBuilder::new();
        let mut sid_of_node: HashMap<u32, u32> = HashMap::new();
        let mut stop_road: Vec<u32> = Vec::new();
        for stop in stops {
            let Some(&(node, dist)) = snapped.get(stop.id.as_str()) else { continue };
            if !used.contains(&node) {
                stats.dropped_stops += 1;
                continue;
            }
            stats.max_snap_m = stats.max_snap_m.max(dist);
            sid_of_node.entry(node).or_insert_with(|| {
                stop_road.push(node);
                builder.add_stop(node, self.road.position(node))
            });
        }
        stats.stops = builder.num_stops();

        // Routes: every surviving piece becomes one transit route; edge
        // geometry comes straight from the cache.
        for pieces in &route_pieces {
            let mut added = false;
            for piece in pieces {
                let stop_seq: Vec<u32> = piece.iter().map(|n| sid_of_node[n]).collect();
                builder.add_route(&stop_seq, |u, v| {
                    let a = stop_road[u as usize];
                    let b = stop_road[v as usize];
                    hop(a, b).clone().expect("routable hop resolved by this batch")
                });
                added = true;
                stats.routes += 1;
            }
            if !added {
                stats.dropped_routes += 1;
            }
        }
        if stats.routes == 0 {
            return Err(GtfsError::EmptyFeed);
        }
        Ok((builder.build(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtfs::{GtfsRoute, GtfsStopTime, GtfsTrip};
    use ct_graph::RoadEdge;

    fn assert_net_identical(a: &TransitNetwork, b: &TransitNetwork) {
        assert_eq!(a.stops(), b.stops(), "stops differ");
        assert_eq!(a.edges(), b.edges(), "edges differ");
        assert_eq!(a.routes(), b.routes(), "routes differ");
    }

    /// A `rows × cols` full grid road network, 100 m spacing.
    fn grid_road(rows: u32, cols: u32) -> RoadNetwork {
        let mut positions = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                positions.push(Point::new(c as f64 * 100.0, r as f64 * 100.0));
            }
        }
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let u = r * cols + c;
                if c + 1 < cols {
                    edges.push(RoadEdge { u, v: u + 1, length: 100.0 });
                }
                if r + 1 < rows {
                    edges.push(RoadEdge { u, v: u + cols, length: 100.0 });
                }
            }
        }
        RoadNetwork::new(positions, edges)
    }

    /// A feed over `road` whose routes visit the given node paths, one stop
    /// per node, one trip per route.
    fn feed_over_nodes(road: &RoadNetwork, proj: &Projection, routes: &[Vec<u32>]) -> GtfsFeed {
        let mut referenced: Vec<u32> = routes.iter().flatten().copied().collect();
        referenced.sort_unstable();
        referenced.dedup();
        let stops = referenced
            .iter()
            .map(|&n| {
                let g = proj.unproject(&road.position(n));
                crate::gtfs::GtfsStop {
                    id: format!("S{n}"),
                    name: String::new(),
                    lat: g.lat,
                    lon: g.lon,
                }
            })
            .collect();
        let mut feed =
            GtfsFeed { stops, routes: Vec::new(), trips: Vec::new(), stop_times: Vec::new() };
        for (ri, nodes) in routes.iter().enumerate() {
            feed.routes.push(GtfsRoute { id: format!("R{ri}"), short_name: format!("{ri}") });
            feed.trips.push(GtfsTrip { id: format!("T{ri}"), route_id: format!("R{ri}") });
            for (si, &n) in nodes.iter().enumerate() {
                feed.stop_times.push(GtfsStopTime {
                    trip_id: format!("T{ri}"),
                    stop_id: format!("S{n}"),
                    sequence: si as u32,
                });
            }
        }
        feed
    }

    #[test]
    fn snap_index_enforces_radius() {
        let road = grid_road(3, 3);
        let snap = SnapIndex::build(&road);
        assert_eq!(snap.max_snap_m(), DEFAULT_MAX_SNAP_M);
        let (node, d) = snap.snap(&Point::new(3.0, 4.0)).unwrap();
        assert_eq!(node, 0);
        assert!((d - 5.0).abs() < 1e-9);
        assert!(snap.snap(&Point::new(50_000.0, 50_000.0)).is_none());
        let loose = SnapIndex::build(&road).with_max_snap_m(f64::INFINITY);
        assert_eq!(loose.snap(&Point::new(50_000.0, 50_000.0)).map(|(n, _)| n), Some(8));
    }

    #[test]
    fn hop_cache_runs_one_dijkstra_per_unique_corridor() {
        let road = grid_road(3, 3);
        let cache = HopPathCache::new();
        // (0,1) requested three times — once reversed — plus (1,2).
        cache.realize(&road, &[(0, 1), (1, 2), (1, 0), (0, 1)], 1);
        let s = cache.stats();
        assert_eq!(s.dijkstra_runs, 2);
        assert_eq!(s.hits, 2);
        assert_eq!(cache.unique_corridors(), 2);
        // A later batch over the same corridors runs nothing new.
        cache.realize(&road, &[(2, 1), (1, 0)], 1);
        assert_eq!(cache.stats().dijkstra_runs, 2);
        assert_eq!(cache.stats().hits, 4);
        assert!(cache.path(0, 1).is_some());
        assert_eq!(cache.path(0, 1).unwrap().0, 100.0);
    }

    #[test]
    fn hop_cache_cap_evicts_oldest_corridor_first() {
        let road = grid_road(3, 3);
        let cache = HopPathCache::new().with_max_entries(2);
        assert_eq!(cache.max_entries(), 2);
        cache.realize(&road, &[(0, 1), (1, 2), (2, 5)], 1);
        // The cap pins the current batch: all three stay resident for the
        // caller that requested them; nothing is evicted yet.
        assert_eq!(cache.unique_corridors(), 3);
        assert_eq!(cache.stats().evictions, 0);

        // The next batch trims to the cap first — the oldest, (0,1), goes
        // — and then re-realizes it: an eviction-induced Dijkstra re-run.
        let runs = cache.stats().dijkstra_runs;
        cache.realize(&road, &[(0, 1)], 1);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().dijkstra_runs, runs + 1);
        assert!(cache.contains(0, 1) && cache.contains(1, 2) && cache.contains(2, 5));
        assert_eq!(cache.path(0, 1).unwrap().0, 100.0);

        // Next trim drops (1,2) — strictly oldest-first — and the resident
        // (2,5) answers from the cache.
        let hits = cache.stats().hits;
        cache.realize(&road, &[(2, 5)], 1);
        assert_eq!(cache.stats().evictions, 2);
        assert!(!cache.contains(1, 2), "oldest corridor must go first");
        assert_eq!(cache.stats().hits, hits + 1);
        assert_eq!(cache.unique_corridors(), 2);
    }

    #[test]
    fn uncapped_cache_never_evicts() {
        let road = grid_road(3, 3);
        let cache = HopPathCache::new();
        let wanted: Vec<(u32, u32)> = (0..8).map(|i| (i, i + 1)).collect();
        cache.realize(&road, &wanted, 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.unique_corridors(), 8);
    }

    #[test]
    fn ingest_cache_cap_is_plumbed_and_survives_imports() {
        let city = crate::CityConfig::small().seed(31).generate();
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = GtfsFeed::from_transit(&city.transit, &proj);
        let mut capped = GtfsIngest::new(&city.road).with_cache_cap(4);
        let (net, _) = capped.import(&feed, &proj).expect("capped import");
        // The cap bounds residency *between* batches, never correctness:
        // output matches the unbounded pipeline.
        let (reference, _) = GtfsIngest::new(&city.road).import(&feed, &proj).expect("import");
        assert_net_identical(&net, &reference);
        let corridors = capped.cache().unique_corridors();
        assert!(corridors > 4, "fixture too small to exercise the cap");

        // A re-import trims to the cap first, then re-realizes what the
        // feed needs: evictions are surfaced and the evicted corridors
        // cost fresh Dijkstras — the price of bounded memory.
        let runs = capped.cache().stats().dijkstra_runs;
        let (net2, _) = capped.import(&feed, &proj).expect("re-import");
        assert_net_identical(&net2, &reference);
        assert_eq!(capped.cache().stats().evictions, corridors - 4);
        assert!(capped.cache().stats().dijkstra_runs > runs, "evicted corridors must re-run");
        // Steady state: residency returns to the feed's working set, not
        // the sum over imports.
        assert_eq!(capped.cache().unique_corridors(), corridors);
    }

    #[test]
    fn concurrent_imports_share_cache_with_exact_totals() {
        // The serving-host pattern: several importer threads pooling one
        // Arc'd cache. Counters must obey the conservation law exactly —
        // every corridor request is either a hit or a counted Dijkstra
        // run, with no lost increments — and every import must produce
        // the same network a solo import produces.
        let city = crate::CityConfig::small().seed(41).generate();
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = GtfsFeed::from_transit(&city.transit, &proj);
        let (reference, _) = GtfsIngest::new(&city.road).import(&feed, &proj).expect("solo");
        // Request count per import = hops of every route = what one
        // import's `wanted` list holds (deterministic for a fixed feed).
        let solo = GtfsIngest::new(&city.road);
        let requests_per_import = {
            let mut ingest = GtfsIngest::new(&city.road).with_shared_cache(solo.shared_cache());
            ingest.import(&feed, &proj).expect("count import");
            let s = solo.cache().stats();
            s.hits + s.dijkstra_runs
        };

        let cache = Arc::new(HopPathCache::new());
        let importers = 4usize;
        std::thread::scope(|scope| {
            for _ in 0..importers {
                let cache = Arc::clone(&cache);
                let (road, feed, proj, reference) = (&city.road, &feed, &proj, &reference);
                scope.spawn(move || {
                    let mut ingest = GtfsIngest::new(road).with_shared_cache(cache);
                    for _ in 0..2 {
                        let (net, _) = ingest.import(feed, proj).expect("concurrent import");
                        assert_net_identical(&net, reference);
                    }
                });
            }
        });

        let s = cache.stats();
        assert_eq!(
            s.hits + s.dijkstra_runs,
            requests_per_import * importers * 2,
            "counter conservation violated: {s:?}"
        );
        // Racing first imports may duplicate runs for a corridor, but
        // never miss one, and the seven warm imports answer everything
        // from the pooled cache — so runs stay far below request volume.
        assert!(s.dijkstra_runs >= cache.unique_corridors(), "{s:?}");
        assert!(s.hits >= requests_per_import * (importers * 2 - 4), "{s:?}");
        assert_eq!(s.evictions, 0);

        // Single-writer accounting stays strict: a fresh solo pipeline
        // over the same feed runs one Dijkstra per unique corridor.
        let mut strict = GtfsIngest::new(&city.road);
        strict.import(&feed, &proj).expect("strict import");
        assert_eq!(strict.cache().stats().dijkstra_runs, strict.cache().unique_corridors());
    }

    #[test]
    fn hop_cache_records_unroutable_corridors() {
        let road = RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(10_000.0, 0.0)],
            vec![RoadEdge { u: 0, v: 1, length: 100.0 }],
        );
        let cache = HopPathCache::new();
        cache.realize(&road, &[(0, 2), (0, 1)], 2);
        assert_eq!(cache.stats().unroutable, 1);
        assert!(cache.path(0, 2).is_none());
        assert!(cache.contains(0, 2), "unroutable corridor is still cached");
        assert!(cache.path(0, 1).is_some());
    }

    #[test]
    fn new_pipeline_matches_reference_on_generated_city() {
        let city = crate::CityConfig::small().seed(11).generate();
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = GtfsFeed::from_transit(&city.transit, &proj);
        let (reference, ref_stats) =
            feed.into_transit_reference(&city.road, &proj).expect("reference import");
        let mut ingest = GtfsIngest::new(&city.road);
        let (net, stats) = ingest.import(&feed, &proj).expect("import");
        assert_net_identical(&net, &reference);
        assert_eq!(stats.stops, ref_stats.stops);
        assert_eq!(stats.routes, ref_stats.routes);
        assert_eq!(stats.dropped_hops, ref_stats.dropped_hops);
        assert_eq!(stats.dropped_routes, ref_stats.dropped_routes);
        assert_eq!(stats.max_snap_m, ref_stats.max_snap_m);
        assert_eq!(stats.dropped_stops, 0);
    }

    #[test]
    fn import_is_invariant_under_thread_count() {
        let city = crate::CityConfig::small().seed(21).generate();
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = GtfsFeed::from_transit(&city.transit, &proj);
        let (reference, ref_stats) = GtfsIngest::new(&city.road)
            .with_threads(1)
            .import(&feed, &proj)
            .expect("single-threaded import");
        for threads in [0, 2, 5] {
            let mut ingest = GtfsIngest::new(&city.road).with_threads(threads);
            let (net, stats) = ingest.import(&feed, &proj).expect("import");
            assert_net_identical(&net, &reference);
            assert_eq!(stats, ref_stats, "threads={threads}");
        }
    }

    /// The acceptance-scale scenario: a city with ≥ 5k stops and ≥ 200
    /// routes sharing corridors imports with exactly one Dijkstra per
    /// unique corridor, invariant under thread count, and answers a
    /// re-import entirely from the cache.
    #[test]
    fn large_city_runs_one_dijkstra_per_unique_corridor() {
        let (rows, cols) = (75u32, 70u32);
        let road = grid_road(rows, cols);
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let node = |r: u32, c: u32| r * cols + c;
        let mut routes: Vec<Vec<u32>> = Vec::new();
        // One route per row and per column (every node referenced)…
        for r in 0..rows {
            routes.push((0..cols).map(|c| node(r, c)).collect());
        }
        for c in 0..cols {
            routes.push((0..rows).map(|r| node(r, c)).collect());
        }
        // …plus 65 L-shaped routes that reuse row/column corridors.
        for i in 0..65u32 {
            let mut path: Vec<u32> = (0..35).map(|c| node(i, c)).collect();
            path.extend((i + 1..(i + 21).min(rows)).map(|r| node(r, 34)));
            routes.push(path);
        }
        assert!(routes.len() >= 200);
        let feed = feed_over_nodes(&road, &proj, &routes);
        assert!(feed.stops.len() >= 5_000);

        let mut ingest = GtfsIngest::new(&road);
        let (net, stats) = ingest.import(&feed, &proj).expect("import");
        assert_eq!(net.num_stops(), (rows * cols) as usize);
        assert_eq!(stats.routes, routes.len());
        assert_eq!(stats.dropped_stops, 0);

        // Exactly one Dijkstra per unique corridor, despite heavy sharing.
        let s = ingest.cache().stats();
        assert_eq!(s.dijkstra_runs, ingest.cache().unique_corridors());
        assert!(s.hits > 0, "L-routes must reuse row/column corridors");
        assert_eq!(s.unroutable, 0);

        // Re-import: fully answered by the city-wide cache.
        let (net2, _) = ingest.import(&feed, &proj).expect("re-import");
        assert_eq!(ingest.cache().stats().dijkstra_runs, s.dijkstra_runs);
        assert_net_identical(&net2, &net);

        // Thread invariance at scale.
        let (net4, _) =
            GtfsIngest::new(&road).with_threads(4).import(&feed, &proj).expect("4-thread import");
        assert_net_identical(&net4, &net);
    }

    #[test]
    fn streaming_import_dir_matches_eager_import() {
        let city = crate::CityConfig::small().seed(17).generate();
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = GtfsFeed::from_transit(&city.transit, &proj);
        let dir = std::env::temp_dir().join(format!("ctbus-ingest-stream-{}", std::process::id()));
        feed.write_dir(&dir).expect("write feed");

        let (eager, eager_stats) = GtfsIngest::new(&city.road)
            .import(&GtfsFeed::load_dir(&dir).expect("load"), &proj)
            .expect("eager import");
        let mut ingest = GtfsIngest::new(&city.road);
        let (streamed, stats) = ingest.import_dir(&dir, &proj).expect("streaming import");
        assert_net_identical(&streamed, &eager);
        assert_eq!(stats, eager_stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_import_detects_ungrouped_stop_times() {
        let road = grid_road(2, 3);
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = feed_over_nodes(&road, &proj, &[vec![0, 1, 2]]);
        let dir = std::env::temp_dir().join(format!("ctbus-ingest-split-{}", std::process::id()));
        feed.write_dir(&dir).expect("write feed");
        // Interleave a second trip between two halves of T0.
        std::fs::write(
            dir.join("stop_times.txt"),
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n\
             T0,08:00:00,08:00:00,S0,0\n\
             TX,08:00:00,08:00:00,S1,0\n\
             T0,08:01:00,08:01:00,S2,1\n",
        )
        .expect("rewrite stop_times");
        let err = GtfsIngest::new(&road).import_dir(&dir, &proj).unwrap_err();
        match err {
            GtfsError::BadRecord { file: "stop_times.txt", line, reason } => {
                assert_eq!(line, 4);
                assert!(reason.contains("T0"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_import_surfaces_malformed_rows_as_errors_not_panics() {
        let road = grid_road(2, 3);
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = feed_over_nodes(&road, &proj, &[vec![0, 1, 2]]);
        let dir = std::env::temp_dir().join(format!("ctbus-ingest-bad-{}", std::process::id()));
        feed.write_dir(&dir).expect("write feed");

        // A junk stop_sequence mid-table must point at its own line.
        std::fs::write(
            dir.join("stop_times.txt"),
            "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n\
             T0,08:00:00,08:00:00,S0,0\n\
             T0,08:01:00,08:01:00,S1,one\n",
        )
        .expect("rewrite stop_times");
        match GtfsIngest::new(&road).import_dir(&dir, &proj).unwrap_err() {
            GtfsError::BadRecord { file: "stop_times.txt", line: 3, reason } => {
                assert!(reason.contains("stop_sequence"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }

        // Invalid UTF-8 bytes in a row must become a positioned error too —
        // a city-scale feed with one corrupt line should name that line.
        let mut bytes = b"trip_id,arrival_time,departure_time,stop_id,stop_sequence\n\
             T0,08:00:00,08:00:00,S0,0\n"
            .to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE, b'\n']);
        std::fs::write(dir.join("stop_times.txt"), &bytes).expect("rewrite stop_times");
        match GtfsIngest::new(&road).import_dir(&dir, &proj).unwrap_err() {
            GtfsError::BadRecord { file: "stop_times.txt", line: 3, reason } => {
                assert!(reason.contains("unreadable line"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_import_picks_longest_trip_like_eager() {
        let road = grid_road(2, 3);
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let mut feed = feed_over_nodes(&road, &proj, &[vec![0, 1, 2]]);
        // A longer second trip on the same route must win, as in the eager
        // representative-trip rule; a trailing short one must not.
        feed.trips.push(GtfsTrip { id: "T0b".into(), route_id: "R0".into() });
        feed.trips.push(GtfsTrip { id: "T0c".into(), route_id: "R0".into() });
        for (si, n) in [0u32, 1, 2, 5].iter().enumerate() {
            feed.stop_times.push(GtfsStopTime {
                trip_id: "T0b".into(),
                stop_id: format!("S{n}"),
                sequence: si as u32,
            });
        }
        feed.stops.push(crate::gtfs::GtfsStop {
            id: "S5".into(),
            name: String::new(),
            lat: proj.unproject(&road.position(5)).lat,
            lon: proj.unproject(&road.position(5)).lon,
        });
        feed.stop_times.push(GtfsStopTime {
            trip_id: "T0c".into(),
            stop_id: "S0".into(),
            sequence: 0,
        });
        let dir = std::env::temp_dir().join(format!("ctbus-ingest-rep-{}", std::process::id()));
        feed.write_dir(&dir).expect("write feed");
        let (eager, _) = GtfsIngest::new(&road).import(&feed, &proj).expect("eager");
        let (streamed, _) =
            GtfsIngest::new(&road).import_dir(&dir, &proj).expect("streaming import");
        assert_net_identical(&streamed, &eager);
        assert_eq!(streamed.route(0).stops.len(), 4, "longest trip represents the route");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_import_handles_duplicate_trip_rows_like_eager() {
        let road = grid_road(2, 3);
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let mut feed = feed_over_nodes(&road, &proj, &[vec![0, 1, 2]]);
        // A second route served by the SAME trip id (duplicate trips.txt
        // row): the eager path makes T0's records represent both routes.
        feed.routes.push(GtfsRoute { id: "R1".into(), short_name: "1".into() });
        feed.trips.push(GtfsTrip { id: "T0".into(), route_id: "R1".into() });
        let dir = std::env::temp_dir().join(format!("ctbus-ingest-dup-{}", std::process::id()));
        feed.write_dir(&dir).expect("write feed");
        let (eager, eager_stats) = GtfsIngest::new(&road)
            .import(&GtfsFeed::load_dir(&dir).expect("load"), &proj)
            .expect("eager");
        assert_eq!(eager.num_routes(), 2, "both routes represented");
        let (streamed, stats) =
            GtfsIngest::new(&road).import_dir(&dir, &proj).expect("streaming import");
        assert_net_identical(&streamed, &eager);
        assert_eq!(stats, eager_stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_stops_are_dropped_and_reference_importer_keeps_them() {
        let road = grid_road(3, 3);
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let mut feed = feed_over_nodes(&road, &proj, &[vec![0, 1, 2]]);
        // An orphan stop: present in stops.txt, referenced by no trip.
        let g = proj.unproject(&road.position(8));
        feed.stops.push(crate::gtfs::GtfsStop {
            id: "ORPHAN".into(),
            name: String::new(),
            lat: g.lat,
            lon: g.lon,
        });

        let mut ingest = GtfsIngest::new(&road);
        let (net, stats) = ingest.import(&feed, &proj).expect("import");
        assert_eq!(net.num_stops(), 3, "only referenced stops imported");
        assert_eq!(stats.stops, 3);
        assert_eq!(stats.dropped_stops, 1);
        // The Laplacian dimension is the referenced stop count.
        assert_eq!(net.adjacency_matrix().n(), 3);

        // The retained pre-refactor importer exhibits the bug.
        let (buggy, buggy_stats) = feed.into_transit_reference(&road, &proj).expect("reference");
        assert_eq!(buggy.num_stops(), 4, "reference importer keeps the orphan");
        assert_eq!(buggy_stats.stops, 4);
        assert_eq!(buggy.adjacency_matrix().n(), 4, "orphan inflates the matrix dimension");
    }

    #[test]
    fn far_away_stops_are_dropped_and_reference_importer_snaps_them() {
        let road = grid_road(3, 3);
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let mut feed = feed_over_nodes(&road, &proj, &[vec![0, 1, 2]]);
        // A referenced stop ~50 km outside the network.
        let g = proj.unproject(&Point::new(50_000.0, 50_000.0));
        feed.stops.push(crate::gtfs::GtfsStop {
            id: "FAR".into(),
            name: String::new(),
            lat: g.lat,
            lon: g.lon,
        });
        feed.stop_times.push(GtfsStopTime {
            trip_id: "T0".into(),
            stop_id: "FAR".into(),
            sequence: 3,
        });

        let mut ingest = GtfsIngest::new(&road);
        let (net, stats) = ingest.import(&feed, &proj).expect("import");
        assert_eq!(net.num_stops(), 3, "far stop dropped, route continues");
        assert_eq!(net.num_edges(), 2);
        assert_eq!(stats.dropped_stops, 1);
        assert!(stats.max_snap_m < 1.0, "snap stat unpolluted: {}", stats.max_snap_m);

        // The reference importer snaps it to a border node and fabricates
        // a hop tens of kilometers long.
        let (buggy, buggy_stats) = feed.into_transit_reference(&road, &proj).expect("reference");
        assert_eq!(buggy.num_stops(), 4);
        assert_eq!(buggy.num_edges(), 3);
        assert!(buggy_stats.max_snap_m > 10_000.0, "absurd snap: {}", buggy_stats.max_snap_m);
    }

    #[test]
    fn referenced_stop_with_no_surviving_piece_is_dropped() {
        // Disconnected road: node 2 is unreachable, so the single-hop
        // route through it dies and its stops must not linger.
        let road = RoadNetwork::new(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(10_000.0, 0.0)],
            vec![RoadEdge { u: 0, v: 1, length: 100.0 }],
        );
        let proj = Projection::new(GeoPoint::new(41.85, -87.65));
        let feed = feed_over_nodes(&road, &proj, &[vec![0, 1], vec![0, 2]]);
        let (net, stats) = GtfsIngest::new(&road)
            .with_max_snap_m(f64::INFINITY)
            .import(&feed, &proj)
            .expect("import");
        assert_eq!(net.num_stops(), 2);
        assert_eq!(stats.routes, 1);
        assert_eq!(stats.dropped_routes, 1);
        // S2 was referenced and snapped but ended in no surviving piece.
        assert_eq!(stats.dropped_stops, 1);
    }
}
