//! The Lanczos method for matrix-exponential actions and quadratic forms.
//!
//! Given a symmetric sparse `A` and a start vector `v`, `t` Lanczos steps
//! build an orthonormal basis `V_t` of the Krylov space and a tridiagonal
//! `T_t = V_tᵀ A V_t`. Then (paper §5.1, refs \[45, 54\]):
//!
//! * `e^A v ≈ ‖v‖ · V_t · e^{T_t} e₁` — [`lanczos_expv`];
//! * `vᵀ e^A v ≈ ‖v‖² · (e^{T_t})₁₁ = ‖v‖² Σ_j z₀ⱼ² e^{θⱼ}` — stochastic
//!   Lanczos quadrature, [`slq_quadratic_form`], which never materializes the
//!   basis and is the kernel under Hutchinson's trace estimator.
//!
//! Per Lemma 2 (a corollary of Musco et al. \[45\]), `t = O(‖A‖₂ + log 1/ε)`
//! iterations suffice; transit networks have tiny spectral norms (≈ 5), so
//! the paper's default `t = 10` is already in the high-accuracy regime.

use crate::error::LinalgError;
use crate::sparse::CsrMatrix;
use crate::tridiag::{tridiag_eigen_first_row, tridiag_eigen_full};
use crate::vector::{axpy, dot, norm, normalize, orthogonalize_against};

/// Tolerance, relative to `‖A‖·‖v‖`, below which a Lanczos β signals an
/// invariant subspace (happy breakdown).
const BREAKDOWN_TOL: f64 = 1e-13;

/// Output of the Lanczos tridiagonalization.
#[derive(Debug, Clone)]
pub struct LanczosDecomposition {
    /// Diagonal of `T` (one entry per completed step).
    pub alphas: Vec<f64>,
    /// Subdiagonal of `T` (`alphas.len() - 1` entries).
    pub betas: Vec<f64>,
    /// Orthonormal basis vectors, if requested.
    pub basis: Option<Vec<Vec<f64>>>,
    /// Norm of the start vector.
    pub initial_norm: f64,
}

impl LanczosDecomposition {
    /// Number of completed Lanczos steps (dimension of `T`).
    pub fn steps(&self) -> usize {
        self.alphas.len()
    }
}

/// Runs `steps` Lanczos iterations from `v0`.
///
/// `keep_basis` stores the orthonormal vectors (needed by [`lanczos_expv`]
/// but not by quadrature); `full_reorth` re-orthogonalizes every new vector
/// against the whole basis, which costs `O(t²n)` but keeps Ritz values clean
/// for eigenvalue work (it forces `keep_basis` internally).
pub fn lanczos_tridiagonalize(
    a: &CsrMatrix,
    v0: &[f64],
    steps: usize,
    keep_basis: bool,
    full_reorth: bool,
) -> Result<LanczosDecomposition, LinalgError> {
    let n = a.n();
    if n == 0 {
        return Err(LinalgError::EmptyInput("matrix"));
    }
    if v0.len() != n {
        return Err(LinalgError::DimensionMismatch { expected: n, actual: v0.len() });
    }
    let mut v = v0.to_vec();
    let initial_norm = normalize(&mut v);
    if initial_norm == 0.0 {
        return Err(LinalgError::EmptyInput("start vector is zero"));
    }

    let store = keep_basis || full_reorth;
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(if store { steps } else { 0 });
    let mut alphas = Vec::with_capacity(steps);
    let mut betas = Vec::with_capacity(steps.saturating_sub(1));

    let mut v_prev: Vec<f64> = vec![0.0; n];
    let mut beta_prev = 0.0;
    let mut w = vec![0.0; n];

    for step in 0..steps.min(n) {
        if store {
            basis.push(v.clone());
        }
        a.matvec(&v, &mut w);
        if beta_prev != 0.0 {
            axpy(-beta_prev, &v_prev, &mut w);
        }
        let alpha = dot(&w, &v);
        axpy(-alpha, &v, &mut w);
        if full_reorth {
            // Two passes of classical Gram–Schmidt ("twice is enough").
            orthogonalize_against(&mut w, &basis);
            orthogonalize_against(&mut w, &basis);
        }
        alphas.push(alpha);

        let beta = norm(&w);
        if step + 1 == steps.min(n) {
            break;
        }
        if beta <= BREAKDOWN_TOL * (1.0 + alpha.abs()) {
            break; // invariant subspace: T is exact for this Krylov space
        }
        betas.push(beta);
        std::mem::swap(&mut v_prev, &mut v);
        v.copy_from_slice(&w);
        normalize(&mut v);
        beta_prev = beta;
    }

    Ok(LanczosDecomposition { alphas, betas, basis: store.then_some(basis), initial_norm })
}

/// Approximates `e^A v` with `steps` Lanczos iterations.
pub fn lanczos_expv(a: &CsrMatrix, v: &[f64], steps: usize) -> Result<Vec<f64>, LinalgError> {
    let dec = lanczos_tridiagonalize(a, v, steps, true, false)?;
    let t = dec.steps();
    let basis = dec.basis.as_ref().expect("basis was requested");

    // e^T e₁ = Z e^Θ Zᵀ e₁.
    let (theta, z) = tridiag_eigen_full(&dec.alphas, &dec.betas)?;
    // (Zᵀ e₁)_j = z₀ⱼ.
    let mut coeff = vec![0.0; t];
    for j in 0..t {
        let zt_e1_j = z[j]; // row 0, column j
        let scale = theta[j].exp() * zt_e1_j;
        for i in 0..t {
            coeff[i] += z[i * t + j] * scale;
        }
    }

    let n = a.n();
    let mut out = vec![0.0; n];
    for (i, q) in basis.iter().enumerate() {
        axpy(dec.initial_norm * coeff[i], q, &mut out);
    }
    Ok(out)
}

/// Approximates the quadratic form `vᵀ e^A v` by stochastic Lanczos
/// quadrature with `steps` iterations (no basis stored).
pub fn slq_quadratic_form(a: &CsrMatrix, v: &[f64], steps: usize) -> Result<f64, LinalgError> {
    let dec = lanczos_tridiagonalize(a, v, steps, false, false)?;
    let pairs = tridiag_eigen_first_row(&dec.alphas, &dec.betas)?;
    let quad: f64 = pairs.iter().map(|&(t, w)| w * w * t.exp()).sum();
    Ok(dec.initial_norm * dec.initial_norm * quad)
}

/// Column `j` of `e^A`, i.e. `e^A e_j`, via Lanczos from the unit vector.
///
/// For a graph adjacency this is the vector of *communicabilities* between
/// `j` and every other vertex; entry `u` feeds the first-order trace
/// perturbation `tr(e^{A+E}) − tr(e^A) ≈ 2(e^A)_{uv}` for a new edge
/// `(u, v)` (the paper's §8 future-work direction).
pub fn expm_column(a: &CsrMatrix, j: usize, steps: usize) -> Result<Vec<f64>, LinalgError> {
    let n = a.n();
    if j >= n {
        return Err(LinalgError::DimensionMismatch { expected: n, actual: j });
    }
    let mut e_j = vec![0.0; n];
    e_j[j] = 1.0;
    lanczos_expv(a, &e_j, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::gaussian_vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn petersen() -> CsrMatrix {
        // The Petersen graph: 10 nodes, 15 edges, 3-regular.
        let outer: Vec<(u32, u32)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let inner: Vec<(u32, u32)> = (0..5).map(|i| (5 + i, 5 + (i + 2) % 5)).collect();
        let spokes: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 5)).collect();
        let edges: Vec<(u32, u32)> = outer.into_iter().chain(inner).chain(spokes).collect();
        CsrMatrix::from_undirected_edges(10, &edges)
    }

    #[test]
    fn expv_matches_dense_expm() {
        let a = petersen();
        let exact = a.to_dense().expm();
        let mut rng = StdRng::seed_from_u64(11);
        let v = gaussian_vector(&mut rng, 10);
        let want = exact.matvec_alloc(&v);
        // Full-dimension Krylov space is exact.
        let got = lanczos_expv(&a, &v, 10).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    #[test]
    fn expv_converges_quickly() {
        let a = petersen();
        let exact = a.to_dense().expm();
        let mut rng = StdRng::seed_from_u64(5);
        let v = gaussian_vector(&mut rng, 10);
        let want = exact.matvec_alloc(&v);
        let got = lanczos_expv(&a, &v, 8).unwrap();
        let err: f64 = got.iter().zip(&want).map(|(g, w)| (g - w) * (g - w)).sum::<f64>().sqrt();
        let scale: f64 = want.iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(err / scale < 1e-4, "relative error {}", err / scale);
    }

    #[test]
    fn slq_matches_exact_quadratic_form() {
        let a = petersen();
        let exact = a.to_dense().expm();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let v = gaussian_vector(&mut rng, 10);
            let ev = exact.matvec_alloc(&v);
            let want: f64 = v.iter().zip(&ev).map(|(a, b)| a * b).sum();
            let got = slq_quadratic_form(&a, &v, 10).unwrap();
            assert!((got - want).abs() / want.abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn breakdown_on_eigenvector_start() {
        // K_2: eigenvector (1, 1)/√2 with eigenvalue 1; e^A v = e¹ v.
        let a = CsrMatrix::from_undirected_edges(2, &[(0, 1)]);
        let v = vec![1.0, 1.0];
        let got = lanczos_expv(&a, &v, 10).unwrap();
        for (g, x) in got.iter().zip(&v) {
            assert!((g - 1f64.exp() * x).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_start_vector_is_error() {
        let a = petersen();
        assert!(lanczos_expv(&a, &[0.0; 10], 5).is_err());
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = petersen();
        assert!(slq_quadratic_form(&a, &[1.0, 2.0], 5).is_err());
    }

    #[test]
    fn steps_capped_at_dimension() {
        let a = CsrMatrix::from_undirected_edges(3, &[(0, 1), (1, 2)]);
        let dec = lanczos_tridiagonalize(&a, &[1.0, 0.5, -0.2], 50, false, false).unwrap();
        assert!(dec.steps() <= 3);
    }

    #[test]
    fn reorthogonalized_basis_is_orthonormal() {
        let a = petersen();
        let mut rng = StdRng::seed_from_u64(19);
        let v = gaussian_vector(&mut rng, 10);
        let dec = lanczos_tridiagonalize(&a, &v, 10, true, true).unwrap();
        let basis = dec.basis.unwrap();
        for i in 0..basis.len() {
            for j in 0..basis.len() {
                let d = dot(&basis[i], &basis[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "basis ({i},{j}) dot {d}");
            }
        }
    }
}
