//! Figure 5: road/transit network overviews — emitted as JSON geometry
//! dumps (the measurable substitute for the paper's map renders).

use ct_data::city_summary_json;

use crate::harness::{ExperimentCtx, OutputSink};

/// Runs this experiment and writes its artifacts.
pub fn run(ctx: &mut ExperimentCtx) {
    let mut sink = OutputSink::new("fig5");
    sink.line("# Fig. 5 — network overviews (JSON geometry exports)");
    sink.blank();

    let mut json = serde_json::Map::new();
    for name in ctx.main_city_names() {
        ctx.prepare(name);
        let bundle = ctx.bundle(name);
        let summary = city_summary_json(&bundle.city);
        let s = bundle.city.stats();
        sink.line(format!(
            "{name}: {} road nodes / {} road edges; {} stops over {} routes \
             (avg {:.1} stops/route) — full geometry in fig5.json",
            s.road_nodes, s.road_edges, s.stops, s.routes, s.avg_route_len
        ));
        json.insert(name.to_string(), summary);
    }
    sink.blank();
    sink.line("Each JSON entry lists every route's ordered stop coordinates (projected meters).");
    sink.write_json(&serde_json::Value::Object(json));
    sink.finish();
}
