#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Geometry substrate for CT-Bus.
//!
//! Everything CT-Bus needs to reason about *where* stops, road vertices, and
//! trajectories are: planar points in a local metric projection, geographic
//! coordinates with haversine distances, turn-angle classification for the
//! paper's feasibility rules (Algorithm 2), axis-aligned bounding boxes,
//! polylines, and a uniform grid index used to find candidate stop pairs
//! within the spacing threshold `τ`.
//!
//! Coordinates are expressed in **meters** in a local tangent-plane
//! (equirectangular) projection; [`GeoPoint`] carries raw WGS84 degrees and
//! can be projected with [`Projection`].

pub mod angle;
pub mod bbox;
pub mod distance;
pub mod grid;
pub mod point;
pub mod polyline;
pub mod shard;

pub use angle::{heading, turn_angle, TurnClass, TURN_KILL_ANGLE, TURN_THRESHOLD_ANGLE};
pub use bbox::BBox;
pub use distance::{equirectangular_m, haversine_m, EARTH_RADIUS_M};
pub use grid::GridIndex;
pub use point::{GeoPoint, Point, Projection};
pub use polyline::Polyline;
pub use shard::ShardMap;
