//! Case runner for the [`proptest!`](crate::proptest) macro.

use crate::strategy::TestRng;
use rand::SeedableRng;

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with a rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Per-property configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many successful cases each property must see.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `f` over deterministic cases (count from `config`, overridable via
/// the `PROPTEST_CASES` environment variable), panicking on the first
/// failure with enough information to replay it.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let want = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases as usize);
    let base = fnv1a(name);
    let mut ran = 0usize;
    let mut rejected = 0usize;
    let max_rejects = want.saturating_mul(20).max(1000);
    let mut attempt = 0u64;
    while ran < want {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejected}) before completing {want} cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed (case {n} of {want}, seed {seed:#x}):\n{msg}",
                    n = ran + 1
                );
            }
        }
    }
}
