//! Criterion microbench behind Table 7: one planning run, ETA (online
//! Lanczos scoring) vs ETA-Pre (pre-computed surrogate), across k.
//!
//! The `eta_sweep_*` pair pins the before/after of the parallel expansion
//! engine on the medium city: `sequential` drives the epoch-batched
//! frontier inline (the retained `run_sequential` reference), `parallel`
//! fans expansion out over all cores through the work-stealing pool. Both
//! produce bit-identical plans (asserted here before measuring); the gap
//! between them is the engine's multicore speedup, recorded into
//! `target/experiments/bench_baseline.json` by the vendored criterion
//! (see docs/benchmarks.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ct_core::{CtBusParams, Planner, PlannerMode};
use ct_data::{CityConfig, DemandModel};

fn bench_eta(c: &mut Criterion) {
    let mut group = c.benchmark_group("eta");
    group.sample_size(10);

    let city = CityConfig::small().seed(77).generate();
    let demand = DemandModel::from_city(&city);

    for k in [6usize, 10, 14] {
        let mut params = CtBusParams::small_defaults();
        params.k = k;
        params.it_max = 400;
        params.sn = 150;
        let planner = Planner::new(&city, &demand, params);

        group.bench_with_input(BenchmarkId::new("eta_online", k), &planner, |b, p| {
            b.iter(|| p.run(PlannerMode::Eta))
        });
        group.bench_with_input(BenchmarkId::new("eta_pre", k), &planner, |b, p| {
            b.iter(|| p.run(PlannerMode::EtaPre))
        });
        group.bench_with_input(BenchmarkId::new("vk_tsp", k), &planner, |b, p| {
            b.iter(|| p.run(PlannerMode::VkTsp))
        });
    }
    group.finish();

    // Medium-city ETA sweep, sequential inline execution vs the parallel
    // work-stealing pool at the machine's available parallelism. The
    // online-scored `Eta` mode is where expansion cost dominates (one SLQ
    // trace per candidate extension); `EtaPre` measures the engine's
    // overhead floor on cheap linear scoring.
    let mut group = c.benchmark_group("eta_sweep");
    group.sample_size(10);

    let city = CityConfig::medium().generate();
    let demand = DemandModel::from_city(&city);
    let mut params = CtBusParams::small_defaults();
    params.k = 12;
    params.sn = 300;
    params.it_max = 600;
    let planner = Planner::new(&city, &demand, params);
    let threads = params.parallelism.worker_threads();

    for (mode, label) in [(PlannerMode::Eta, "online"), (PlannerMode::EtaPre, "pre")] {
        // The determinism contract the speedup rests on.
        assert_eq!(
            planner.run_sequential(mode).best,
            planner.run_with_threads(mode, threads).best,
            "parallel plan diverged from sequential reference"
        );
        group.bench_with_input(
            BenchmarkId::new(format!("eta_sweep_{label}_sequential"), "medium"),
            &planner,
            |b, p| b.iter(|| p.run_sequential(mode)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("eta_sweep_{label}_parallel"), "medium"),
            &planner,
            |b, p| b.iter(|| p.run_with_threads(mode, threads)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eta);
criterion_main!(benches);
