//! Equivalence contract of spatially sharded planning: partitioning the
//! Δ(e) sweep into shards (`Parallelism::shards`) must be **bit-identical**
//! to the unsharded path — same `Precomputed` state, same plans, same
//! session commit histories — for every shard count and thread count.
//! Sharding, like threading, is an execution strategy, never part of the
//! algorithm (see `crates/core/src/shard.rs`).

use ct_core::precompute::compute_deltas_sharded_with_threads;
use ct_core::{CtBusParams, PlannerMode, PlanningSession, Precomputed, RefreshPolicy, ShardLayout};
use ct_data::{City, CityConfig, DemandModel};
use proptest::prelude::*;

fn small_city(seed: u64) -> (City, DemandModel) {
    let city = CityConfig::small().seed(seed).generate();
    let demand = DemandModel::from_city(&city);
    (city, demand)
}

/// Trimmed parameters so the shard × thread matrix stays fast.
fn quick_params() -> CtBusParams {
    let mut params = CtBusParams::small_defaults();
    params.k = 6;
    params.sn = 80;
    params.it_max = 400;
    params.trace_probes = 8;
    params.lanczos_steps = 6;
    params
}

/// Asserts the algorithmically meaningful `Precomputed` state matches.
fn assert_pre_identical(a: &Precomputed, b: &Precomputed, what: &str) {
    assert_eq!(a.delta, b.delta, "{what}: delta diverged");
    assert_eq!(a.base_trace, b.base_trace, "{what}: base_trace");
    assert_eq!(a.top_eigs, b.top_eigs, "{what}: top_eigs");
    assert_eq!(a.d_max, b.d_max, "{what}: d_max");
    assert_eq!(a.lambda_max, b.lambda_max, "{what}: lambda_max");
    assert_eq!(a.base_lambda, b.base_lambda, "{what}: base_lambda");
    assert_eq!(a.conn_path_ub, b.conn_path_ub, "{what}: conn_path_ub");
}

#[test]
fn all_boundary_layout_stitches_bit_identically() {
    // Adversarial layout: every road node is its own shard, so every
    // corridor with at least one road edge straddles shards and every new
    // candidate lands in the boundary set — the sweep runs entirely
    // through the global stitching path and must still be bit-identical.
    let (city, demand) = small_city(41);
    let params = quick_params();
    let unsharded =
        Precomputed::build_with(&city, &demand, &params, ct_core::DeltaMethod::PairedProbes);
    let n = city.road.num_nodes();
    let node_shard: Vec<u32> = (0..n as u32).collect();
    let layout = ShardLayout::from_node_shards(&city.road, &unsharded.candidates, node_shard, n);
    for s in 0..layout.num_shards() {
        assert!(layout.local(s).is_empty(), "shard {s} captured a local candidate");
    }
    assert_eq!(layout.boundary().len(), unsharded.candidates.num_new());

    let delta = compute_deltas_sharded_with_threads(
        &layout,
        &unsharded.candidates,
        &unsharded.base_adj,
        &unsharded.estimator,
        unsharded.base_trace,
        2,
    );
    assert_eq!(delta, unsharded.delta, "all-boundary sweep diverged");
}

#[test]
fn one_shard_is_literally_unsharded() {
    // `shards = 1` resolves to no layout at all: the build goes down the
    // exact unsharded code path, not a degenerate sharded one.
    let (city, demand) = small_city(42);
    let mut params = quick_params();
    params.parallelism.shards = 1;
    let pre = Precomputed::build_with(&city, &demand, &params, ct_core::DeltaMethod::PairedProbes);
    assert!(pre.shard_layout.is_none());
}

#[test]
fn commit_histories_match_across_shard_counts() {
    // Multi-round plan → commit sessions: every shard count must produce
    // the same plans and the same algorithmic commit summaries as the
    // unsharded session, under both refresh tiers.
    let (city, demand) = small_city(43);
    let params = quick_params();
    for refresh in [RefreshPolicy::Exact, RefreshPolicy::approximate()] {
        let mut reference: Option<Vec<_>> = None;
        for shards in [0usize, 1, 2, 4, 16] {
            let mut p = params;
            p.parallelism.shards = shards;
            let mut session =
                PlanningSession::new(city.clone(), demand.clone(), p).with_refresh(refresh);
            let mut history = Vec::new();
            for _ in 0..3 {
                let result = session.plan(PlannerMode::EtaPre);
                if result.best.is_empty() {
                    break;
                }
                let summary = session.commit(&result.best);
                history.push((
                    result.best,
                    result.trace,
                    result.evaluations,
                    summary.new_edges,
                    summary.covered_road_edges,
                    summary.refreshed_candidates,
                ));
            }
            assert!(!history.is_empty(), "fixture planned nothing");
            match &reference {
                None => reference = Some(history),
                Some(want) => {
                    assert_eq!(&history, want, "shards={shards} refresh={refresh:?} diverged");
                }
            }
        }
    }
}

#[test]
fn approximate_tier_skips_untouched_shards() {
    // The perf claim behind sharding: with enough shards, a committed
    // route's corridor misses most of them and the approximate refresh
    // reports the skips (while staying bit-identical, per the tests
    // above).
    let (city, demand) = small_city(44);
    let mut params = quick_params();
    params.parallelism.shards = 16;
    let mut session =
        PlanningSession::new(city, demand, params).with_refresh(RefreshPolicy::approximate());
    let result = session.plan(PlannerMode::EtaPre);
    assert!(!result.best.is_empty());
    let summary = session.commit(&result.best);
    assert!(summary.shards_total > 1, "layout did not shard");
    assert!(
        summary.shards_skipped > 0,
        "no shard skipped: route touched all {} shards",
        summary.shards_total
    );
    assert!(summary.shards_skipped < summary.shards_total, "route touched no shard at all");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random city, shard count, thread count: sharded precompute and the
    // plan it feeds must reproduce the unsharded reference bit for bit.
    #[test]
    fn sharded_planning_bit_identical_on_generated_cities(
        seed in 0u64..10_000,
        shards_idx in 0usize..4,
        threads_idx in 0usize..3,
    ) {
        let (city, demand) = small_city(seed);
        let mut params = quick_params();
        params.parallelism.threads = 1;
        params.parallelism.shards = 0;
        let reference =
            Precomputed::build_with(&city, &demand, &params, ct_core::DeltaMethod::PairedProbes);
        let ref_run = ct_core::Planner::with_precomputed(&city, params, reference.clone())
            .run(PlannerMode::EtaPre);

        params.parallelism.shards = [1usize, 2, 4, 16][shards_idx];
        params.parallelism.threads = [1usize, 2, 4][threads_idx];
        let sharded =
            Precomputed::build_with(&city, &demand, &params, ct_core::DeltaMethod::PairedProbes);
        assert_pre_identical(&sharded, &reference, "sharded build");
        let run = ct_core::Planner::with_precomputed(&city, params, sharded)
            .run(PlannerMode::EtaPre);
        prop_assert_eq!(&run.best, &ref_run.best);
        prop_assert_eq!(&run.trace, &ref_run.trace);
        prop_assert_eq!(run.evaluations, ref_run.evaluations);
    }
}
