//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io)
//! property-testing crate.
//!
//! The build environment has no network access, so the subset of proptest the
//! CT-Bus workspace uses is reimplemented here:
//!
//! * the [`proptest!`] macro with the `arg in strategy` binding syntax;
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::prop_flat_map`];
//! * range strategies (`0..n`, `-5.0f64..5.0`, inclusive variants), tuple
//!   strategies up to arity 6, [`Just`], and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! **Shrinking** is minimal but real: integer and index strategies shrink a
//! failing value toward the low end of their range (floor, midpoint, then
//! single steps), tuples shrink component-wise, and [`collection::vec`]
//! truncates before shrinking elements. Floats and `prop_map`/
//! `prop_flat_map` outputs don't shrink (the mapping can't be inverted) —
//! for those the case's deterministic seed is still reported. Each test
//! runs `PROPTEST_CASES` cases (default 32), seeded from the test name, so
//! runs are reproducible; failures panic with the seed, the failure
//! message, and the minimal counterexample found.

pub mod collection;
pub mod runner;
pub mod strategy;

pub use runner::ProptestConfig;
pub use strategy::{Just, Strategy};

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // One tuple strategy over all bindings: components are
                // drawn in declaration order (the same RNG stream the
                // sequential form used), and a failing tuple shrinks
                // component-wise.
                let __pt_strategy = ($(($strategy),)+);
                $crate::runner::run_cases_shrink(
                    $config,
                    stringify!($name),
                    &__pt_strategy,
                    |__pt_case| {
                        let ($($arg,)+) = __pt_case;
                        let __pt_out: ::std::result::Result<(), $crate::runner::TestCaseError> =
                            (|| {
                                $body
                                ::std::result::Result::Ok(())
                            })();
                        __pt_out
                    },
                )
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a [`proptest!`] body; failure reports the formatted message
/// without aborting the whole process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Discards the current case (without failing) when its inputs don't satisfy
/// a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::Reject);
        }
    };
}
