//! Property-based tests for the graph substrate.

use ct_graph::{
    bfs_hops, connected_components, dijkstra_all, dijkstra_bounded, global_min_cut, min_cut_of,
    shortest_path, RoadEdge, RoadNetwork, TransferIndex, TransitNetworkBuilder,
};
use ct_spatial::Point;
use proptest::prelude::*;

fn road_strategy(max_n: usize) -> impl Strategy<Value = RoadNetwork> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1.0f64..100.0), 0..3 * n).prop_map(
            move |extra| {
                let positions: Vec<Point> = (0..n)
                    .map(|i| Point::new((i % 7) as f64 * 50.0, (i / 7) as f64 * 50.0))
                    .collect();
                let mut edges: Vec<RoadEdge> =
                    (0..n as u32 - 1).map(|i| RoadEdge { u: i, v: i + 1, length: 10.0 }).collect();
                edges.extend(
                    extra.into_iter().filter(|(u, v, _)| u != v).map(|(u, v, length)| RoadEdge {
                        u,
                        v,
                        length,
                    }),
                );
                RoadNetwork::new(positions, edges)
            },
        )
    })
}

proptest! {
    #[test]
    fn dijkstra_distances_are_symmetric(g in road_strategy(24), s in 0u32..24, t in 0u32..24) {
        let n = g.num_nodes() as u32;
        let (s, t) = (s % n, t % n);
        let fwd = shortest_path(&g, s, t).map(|p| p.dist);
        let bwd = shortest_path(&g, t, s).map(|p| p.dist);
        match (fwd, bwd) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (None, None) => {}
            other => prop_assert!(false, "asymmetric reachability {other:?}"),
        }
    }

    #[test]
    fn dijkstra_satisfies_triangle_inequality(g in road_strategy(20), a in 0u32..20, b in 0u32..20) {
        let n = g.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        let da = dijkstra_all(&g, a);
        let db = dijkstra_all(&g, b);
        for v in 0..n as usize {
            if da[v].is_finite() && db[v].is_finite() && da[b as usize].is_finite() {
                prop_assert!(da[v] <= da[b as usize] + db[v] + 1e-9);
            }
        }
    }

    #[test]
    fn reachability_matches_components(g in road_strategy(20)) {
        let labels = connected_components(&g);
        let d = dijkstra_all(&g, 0);
        for v in 0..g.num_nodes() {
            prop_assert_eq!(labels[v] == labels[0], d[v].is_finite());
        }
    }

    #[test]
    fn bfs_hops_lower_bound_path_edges(g in road_strategy(18), t in 0u32..18) {
        let n = g.num_nodes() as u32;
        let t = t % n;
        let hops = bfs_hops(&g, 0);
        if let Some(p) = shortest_path(&g, 0, t) {
            // Any path has at least as many edges as the BFS hop count.
            prop_assert!(p.edges.len() as u32 >= hops[t as usize]);
        } else {
            prop_assert_eq!(hops[t as usize], u32::MAX);
        }
    }

    #[test]
    fn bounded_dijkstra_agrees_with_full_dijkstra(
        g in road_strategy(20), s in 0u32..20, cutoff in 0.0f64..400.0,
    ) {
        let n = g.num_nodes() as u32;
        let s = s % n;
        let full = dijkstra_all(&g, s);
        let bounded = dijkstra_bounded(&g, s, cutoff);
        // Every settled node matches the full distances.
        for &(v, d) in &bounded {
            prop_assert!((d - full[v as usize]).abs() < 1e-9);
            prop_assert!(d <= cutoff + 1e-9);
        }
        // Every node within the cutoff is settled (no false misses).
        let settled: std::collections::HashSet<u32> =
            bounded.iter().map(|&(v, _)| v).collect();
        for v in 0..n {
            if full[v as usize] <= cutoff {
                prop_assert!(settled.contains(&v), "node {v} within cutoff missed");
            }
        }
    }

    #[test]
    fn min_cut_weight_bounds_any_single_node_cut(g in road_strategy(16)) {
        let cut = min_cut_of(&g).expect("graphs have ≥ 3 nodes");
        // The global min cut is no heavier than isolating any one node.
        for v in 0..g.num_nodes() as u32 {
            let deg_weight: f64 = g.neighbors(v).iter().map(|&(_, e)| g.edge(e).length).sum();
            prop_assert!(cut.weight <= deg_weight + 1e-9);
        }
        // Partition is a proper, non-empty subset.
        prop_assert!(!cut.partition.is_empty());
        prop_assert!(cut.partition.len() < g.num_nodes());
        // Its weight is exactly the weight crossing the partition.
        let side: std::collections::HashSet<u32> = cut.partition.iter().copied().collect();
        let crossing: f64 = g
            .edges()
            .iter()
            .filter(|e| side.contains(&e.u) != side.contains(&e.v))
            .map(|e| e.length)
            .sum();
        prop_assert!((crossing - cut.weight).abs() < 1e-9, "{crossing} vs {}", cut.weight);
    }

    #[test]
    fn min_cut_is_invariant_under_edge_relabeling(
        edges in proptest::collection::vec((0u32..8, 0u32..8, 1.0f64..9.0), 4..20),
    ) {
        let filtered: Vec<(u32, u32, f64)> =
            edges.into_iter().filter(|(u, v, _)| u != v).collect();
        prop_assume!(filtered.len() >= 3);
        let a = global_min_cut(8, &filtered);
        let mut reversed = filtered.clone();
        reversed.reverse();
        let b = global_min_cut(8, &reversed);
        match (a, b) {
            (Some(x), Some(y)) => prop_assert!((x.weight - y.weight).abs() < 1e-9),
            other => prop_assert!(false, "cut disappeared: {other:?}"),
        }
    }

    #[test]
    fn transfers_are_symmetric_and_triangle_bounded(
        routes in proptest::collection::vec(
            proptest::collection::vec(0u32..30, 2..6), 1..8,
        ),
    ) {
        // Build a transit network over 30 stops from arbitrary route lists.
        let mut b = TransitNetworkBuilder::new();
        for i in 0..30 {
            b.add_stop(i, Point::new(i as f64 * 10.0, 0.0));
        }
        for r in &routes {
            let mut dedup = Vec::new();
            for &s in r {
                if dedup.last() != Some(&s) {
                    dedup.push(s);
                }
            }
            if dedup.len() >= 2 {
                b.add_route(&dedup, |_, _| (10.0, vec![]));
            }
        }
        let net = b.build();
        prop_assume!(net.num_routes() > 0);
        let idx = TransferIndex::new(&net);
        for u in 0..6u32 {
            for v in 0..6u32 {
                prop_assert_eq!(idx.min_transfers(u, v), idx.min_transfers(v, u));
            }
        }
        // Triangle-ish: going u→w cannot need more than u→v→w plus one
        // extra boarding at v.
        for (u, v, w) in [(0u32, 1, 2), (3, 4, 5)] {
            if let (Some(a), Some(b2)) = (idx.min_transfers(u, v), idx.min_transfers(v, w)) {
                if let Some(direct) = idx.min_transfers(u, w) {
                    prop_assert!(direct <= a + b2 + 1);
                }
            }
        }
    }
}
