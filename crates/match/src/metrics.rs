//! Accuracy metrics for map-matching against ground truth.
//!
//! The standard figure of merit is Newson–Krumm's length-weighted route
//! mismatch: `(d₊ + d₋) / d₀`, where `d₊` is the length of spuriously
//! matched road, `d₋` the length of missed true road, and `d₀` the true
//! route length. We also expose edge-level precision/recall (length
//! weighted) and the fraction of samples that got matched at all.

use std::collections::HashSet;

use ct_data::Trajectory;
use ct_graph::RoadNetwork;
use serde::{Deserialize, Serialize};

/// Accuracy of one matched trace against its ground-truth trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchAccuracy {
    /// Length-weighted fraction of matched road that is truly on the route.
    pub edge_precision: f64,
    /// Length-weighted fraction of the true route that was matched.
    pub edge_recall: f64,
    /// Newson–Krumm route mismatch `(d₊ + d₋)/d₀` (0 = perfect; can
    /// exceed 1 for wildly wrong matches).
    pub length_mismatch: f64,
    /// Total length of the ground-truth route, meters.
    pub truth_length_m: f64,
}

impl MatchAccuracy {
    /// F1 score of the length-weighted precision/recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.edge_precision, self.edge_recall);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Scores the union of `matched` trajectories against `truth`.
///
/// Edges are compared as sets (traversal order and multiplicity do not
/// matter — demand aggregation is per-edge). An empty truth yields
/// precision 0 (nothing can be correct) unless the match is also empty, in
/// which case everything is vacuously perfect.
pub fn evaluate_match(
    road: &RoadNetwork,
    truth: &Trajectory,
    matched: &[Trajectory],
) -> MatchAccuracy {
    let truth_set: HashSet<u32> = truth.edges.iter().copied().collect();
    let matched_set: HashSet<u32> = matched.iter().flat_map(|t| t.edges.iter().copied()).collect();

    let len = |s: &HashSet<u32>| -> f64 { s.iter().map(|&e| road.edge(e).length).sum() };
    let truth_len = len(&truth_set);
    let matched_len = len(&matched_set);
    let inter: HashSet<u32> = truth_set.intersection(&matched_set).copied().collect();
    let inter_len = len(&inter);

    // Clamp at zero: the sums run over hash sets in different orders, so
    // equal sets can differ by an ulp.
    let d_plus = (matched_len - inter_len).max(0.0); // spurious
    let d_minus = (truth_len - inter_len).max(0.0); // missed

    let edge_precision = if matched_len > 0.0 {
        inter_len / matched_len
    } else if truth_len == 0.0 {
        1.0
    } else {
        0.0
    };
    let edge_recall = if truth_len > 0.0 {
        inter_len / truth_len
    } else if matched_len == 0.0 {
        1.0
    } else {
        0.0
    };
    let length_mismatch = if truth_len > 0.0 {
        (d_plus + d_minus) / truth_len
    } else if matched_len == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };

    MatchAccuracy { edge_precision, edge_recall, length_mismatch, truth_length_m: truth_len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_graph::RoadEdge;
    use ct_spatial::Point;

    fn line_road(n: u32) -> RoadNetwork {
        let positions = (0..n).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let edges = (0..n - 1).map(|i| RoadEdge { u: i, v: i + 1, length: 100.0 }).collect();
        RoadNetwork::new(positions, edges)
    }

    #[test]
    fn perfect_match_scores_one() {
        let road = line_road(4);
        let truth = Trajectory::new(vec![0, 1, 2, 3], vec![0, 1, 2]);
        let acc = evaluate_match(&road, &truth, std::slice::from_ref(&truth));
        assert_eq!(acc.edge_precision, 1.0);
        assert_eq!(acc.edge_recall, 1.0);
        assert_eq!(acc.length_mismatch, 0.0);
        assert_eq!(acc.f1(), 1.0);
        assert_eq!(acc.truth_length_m, 300.0);
    }

    #[test]
    fn half_covered_truth() {
        let road = line_road(5);
        let truth = Trajectory::new(vec![0, 1, 2, 3, 4], vec![0, 1, 2, 3]);
        let matched = Trajectory::new(vec![0, 1, 2], vec![0, 1]);
        let acc = evaluate_match(&road, &truth, &[matched]);
        assert_eq!(acc.edge_precision, 1.0);
        assert_eq!(acc.edge_recall, 0.5);
        assert_eq!(acc.length_mismatch, 0.5); // 200 m missed / 400 m truth
    }

    #[test]
    fn spurious_edges_hit_precision_and_mismatch() {
        let road = line_road(5);
        let truth = Trajectory::new(vec![0, 1], vec![0]);
        let matched = Trajectory::new(vec![0, 1, 2], vec![0, 1]);
        let acc = evaluate_match(&road, &truth, &[matched]);
        assert_eq!(acc.edge_precision, 0.5);
        assert_eq!(acc.edge_recall, 1.0);
        assert_eq!(acc.length_mismatch, 1.0); // 100 m spurious / 100 m truth
    }

    #[test]
    fn union_over_multiple_segments() {
        let road = line_road(5);
        let truth = Trajectory::new(vec![0, 1, 2, 3, 4], vec![0, 1, 2, 3]);
        let segs =
            vec![Trajectory::new(vec![0, 1], vec![0]), Trajectory::new(vec![2, 3, 4], vec![2, 3])];
        let acc = evaluate_match(&road, &truth, &segs);
        assert_eq!(acc.edge_precision, 1.0);
        assert_eq!(acc.edge_recall, 0.75);
    }

    #[test]
    fn empty_truth_and_empty_match_are_vacuously_perfect() {
        let road = line_road(3);
        let truth = Trajectory::new(vec![], vec![]);
        let acc = evaluate_match(&road, &truth, &[]);
        assert_eq!(acc.edge_precision, 1.0);
        assert_eq!(acc.edge_recall, 1.0);
        assert_eq!(acc.length_mismatch, 0.0);
    }

    #[test]
    fn empty_truth_with_spurious_match_is_worst_case() {
        let road = line_road(3);
        let truth = Trajectory::new(vec![], vec![]);
        let acc = evaluate_match(&road, &truth, &[Trajectory::new(vec![0, 1], vec![0])]);
        assert_eq!(acc.edge_precision, 0.0);
        assert!(acc.length_mismatch.is_infinite());
        assert_eq!(acc.f1(), 0.0);
    }

    #[test]
    fn duplicate_edges_count_once() {
        let road = line_road(3);
        let truth = Trajectory::new(vec![0, 1], vec![0]);
        // Matched path bounces back and forth over edge 0.
        let matched = Trajectory::new(vec![0, 1, 0, 1], vec![0, 0, 0]);
        let acc = evaluate_match(&road, &truth, &[matched]);
        assert_eq!(acc.edge_precision, 1.0);
        assert_eq!(acc.edge_recall, 1.0);
    }
}
