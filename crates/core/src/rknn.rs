//! RkNNT demand estimation (paper ref \[57\]).
//!
//! Wang et al.'s *Reverse k Nearest Neighbors over Trajectories* is the
//! established alternative to CT-Bus's edge-overlap demand (Eq. 2): a
//! trajectory `T` supports a route `R` when `R` ranks among `T`'s `k`
//! best-serving routes, where "serving" means the commuter can board near
//! their origin and alight near their destination. The demand a new route
//! captures is then `|RkNNT(R)| = #{T : R ∈ kNN(T)}`.
//!
//! This module implements the measure so the two demand notions can be
//! compared (`ext_rknn` experiment): routes that maximize Eq. 2 should
//! also capture many reverse-kNN trajectories — they are surrogates for
//! the same ridership.
//!
//! Simplifications vs \[57\] (which builds disk-based R-tree indexes for
//! million-trajectory corpora): distances are Euclidean walking distances
//! to stops with a hard access cutoff, and the scan is in-memory over the
//! corpus — faithful semantics at our reproduction scale.

use ct_data::City;
use ct_spatial::{GridIndex, Point};
use serde::{Deserialize, Serialize};

/// Parameters of the RkNNT demand measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RknnParams {
    /// The `k` in reverse-k-nearest-neighbors: a trajectory supports a
    /// route ranked within its `k` best.
    pub k: usize,
    /// Maximum walking distance from trip endpoints to a stop, meters;
    /// beyond it a route cannot serve the trip at all.
    pub max_walk_m: f64,
}

impl Default for RknnParams {
    fn default() -> Self {
        RknnParams { k: 2, max_walk_m: 500.0 }
    }
}

/// How well one route serves one trip: total origin+destination walking
/// distance to two *distinct* stops of the route, or `None` if either leg
/// exceeds the walking cutoff (or the route has fewer than two stops).
pub fn route_service_distance(
    origin: &Point,
    destination: &Point,
    route_stops: &[Point],
    max_walk_m: f64,
) -> Option<f64> {
    if route_stops.len() < 2 {
        return None;
    }
    // Best and second-best stop per endpoint; distinctness is then
    // resolvable without the O(|stops|²) pair scan.
    let two_best = |p: &Point| -> [(usize, f64); 2] {
        let mut best = [(usize::MAX, f64::INFINITY); 2];
        for (i, s) in route_stops.iter().enumerate() {
            let d = p.dist(s);
            if d < best[0].1 {
                best[1] = best[0];
                best[0] = (i, d);
            } else if d < best[1].1 {
                best[1] = (i, d);
            }
        }
        best
    };
    let bo = two_best(origin);
    let bd = two_best(destination);
    let mut best: Option<f64> = None;
    for &(oi, od) in &bo {
        for &(di, dd) in &bd {
            if oi == di || oi == usize::MAX || di == usize::MAX {
                continue;
            }
            if od > max_walk_m || dd > max_walk_m {
                continue;
            }
            let total = od + dd;
            if best.is_none_or(|b| total < b) {
                best = Some(total);
            }
        }
    }
    best
}

/// Per-trajectory assignment produced by [`rknn_demand`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RknnDemand {
    /// Trajectories for which the query route ranks within the top `k`.
    pub supporters: usize,
    /// Trajectories the route can serve at all (both walks ≤ cutoff).
    pub reachable: usize,
    /// Trajectories in the corpus with usable endpoints.
    pub total: usize,
}

impl RknnDemand {
    /// Supporters as a fraction of the whole corpus.
    pub fn support_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.supporters as f64 / self.total as f64
        }
    }
}

/// Counts the reverse-k-nearest trajectories of a candidate route.
///
/// The candidate is a stop-position sequence (use
/// [`crate::RoutePlan::stops`] mapped through the transit network); it
/// competes against every *existing* route in `city`. A trajectory
/// supports the candidate when the candidate's service distance is within
/// the `k` smallest among {candidate} ∪ existing routes (ties favor the
/// candidate, matching \[57\]'s ≤ semantics).
///
/// ```
/// use ct_core::rknn::{rknn_demand, RknnParams};
/// let city = ct_data::CityConfig::small().seed(4).generate();
/// // Query an existing route's own geometry: it competes with itself at
/// // distance parity, so it always ranks first for the trips it serves.
/// let stops: Vec<_> = city.transit.route(0).stops.iter()
///     .map(|&s| city.transit.stop(s).pos)
///     .collect();
/// let d = rknn_demand(&city, &stops, &RknnParams::default());
/// assert!(d.supporters >= d.reachable.min(1));
/// assert!(d.supporters <= d.total);
/// ```
pub fn rknn_demand(city: &City, candidate_stops: &[Point], params: &RknnParams) -> RknnDemand {
    assert!(params.k >= 1, "k must be at least 1");
    assert!(params.max_walk_m > 0.0, "walking cutoff must be positive");
    let transit = &city.transit;
    let road = &city.road;

    // Existing routes as stop-position lists.
    let existing: Vec<Vec<Point>> = transit
        .routes()
        .iter()
        .map(|r| r.stops.iter().map(|&s| transit.stop(s).pos).collect())
        .collect();

    // Only routes with a stop near an endpoint can serve it: prefilter the
    // candidate route set per endpoint with a grid over all stops.
    let stop_positions: Vec<Point> = transit.stops().iter().map(|s| s.pos).collect();
    let stop_routes = transit.routes_per_stop();
    let grid = GridIndex::build(params.max_walk_m.max(1.0), &stop_positions);

    let mut out = RknnDemand::default();
    for traj in city.trajectories.iter() {
        let (Some(o), Some(d)) = (traj.origin(), traj.destination()) else { continue };
        let origin = road.position(o);
        let dest = road.position(d);
        out.total += 1;

        let cand_dist = route_service_distance(&origin, &dest, candidate_stops, params.max_walk_m);
        let Some(cand_dist) = cand_dist else { continue };
        out.reachable += 1;

        // Routes with at least one stop within walking range of both
        // endpoints are the only possible competitors.
        let mut near_origin: Vec<u32> = Vec::new();
        grid.for_each_within(&origin, params.max_walk_m, |s| {
            near_origin.extend_from_slice(&stop_routes[s as usize]);
        });
        near_origin.sort_unstable();
        near_origin.dedup();
        let mut competitors: Vec<u32> = Vec::new();
        grid.for_each_within(&dest, params.max_walk_m, |s| {
            for &r in &stop_routes[s as usize] {
                if near_origin.binary_search(&r).is_ok() {
                    competitors.push(r);
                }
            }
        });
        competitors.sort_unstable();
        competitors.dedup();

        // Rank: count existing routes strictly better than the candidate.
        let better = competitors
            .iter()
            .filter_map(|&r| {
                route_service_distance(&origin, &dest, &existing[r as usize], params.max_walk_m)
            })
            .filter(|&dist| dist < cand_dist)
            .count();
        if better < params.k {
            out.supporters += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_data::CityConfig;

    #[test]
    fn service_distance_requires_two_distinct_stops() {
        let stops = vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)];
        let o = Point::new(10.0, 0.0);
        let d = Point::new(990.0, 0.0);
        let dist = route_service_distance(&o, &d, &stops, 500.0).unwrap();
        assert!((dist - 20.0).abs() < 1e-9);
        // Same nearest stop for both endpoints: must fall back to the
        // second-best on one side, not serve via a single stop.
        let both_near_first =
            route_service_distance(&Point::new(10.0, 0.0), &Point::new(20.0, 0.0), &stops, 500.0);
        assert!(both_near_first.is_none(), "1 km walk exceeds the cutoff");
    }

    #[test]
    fn service_distance_cutoff_and_degenerate_routes() {
        let stops = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let far = Point::new(5000.0, 0.0);
        let near = Point::new(5.0, 0.0);
        assert!(route_service_distance(&near, &far, &stops, 500.0).is_none());
        assert!(route_service_distance(&near, &far, &stops[..1], 1e9).is_none());
        assert!(route_service_distance(&near, &far, &[], 1e9).is_none());
    }

    #[test]
    fn supporters_grow_with_k_and_walk_radius() {
        let city = CityConfig::small().seed(6).generate();
        let stops: Vec<Point> =
            city.transit.route(0).stops.iter().map(|&s| city.transit.stop(s).pos).collect();
        let base = rknn_demand(&city, &stops, &RknnParams { k: 1, max_walk_m: 400.0 });
        let more_k = rknn_demand(&city, &stops, &RknnParams { k: 3, max_walk_m: 400.0 });
        let more_walk = rknn_demand(&city, &stops, &RknnParams { k: 1, max_walk_m: 800.0 });
        assert!(more_k.supporters >= base.supporters, "k must be monotone");
        assert!(more_walk.reachable >= base.reachable, "radius must be monotone");
        assert!(base.supporters <= base.reachable);
        assert!(base.reachable <= base.total);
        assert_eq!(base.total, city.trajectories.len());
    }

    #[test]
    fn unreachable_candidate_captures_nothing() {
        let city = CityConfig::small().seed(6).generate();
        // A route far outside the city.
        let stops = vec![Point::new(1e7, 1e7), Point::new(1e7 + 400.0, 1e7)];
        let d = rknn_demand(&city, &stops, &RknnParams::default());
        assert_eq!(d.supporters, 0);
        assert_eq!(d.reachable, 0);
        assert!(d.total > 0);
        assert_eq!(d.support_fraction(), 0.0);
    }

    #[test]
    fn dominant_route_captures_served_trips_at_k1() {
        // A candidate placed exactly on a trajectory's endpoints beats any
        // existing route for that trip (distance ~0 each side).
        let city = CityConfig::small().seed(6).generate();
        let t = city.trajectories.iter().find(|t| t.len() >= 3).expect("a usable trajectory");
        let o = city.road.position(t.origin().unwrap());
        let d = city.road.position(t.destination().unwrap());
        let stops = vec![o, d];
        let res = rknn_demand(&city, &stops, &RknnParams { k: 1, max_walk_m: 500.0 });
        assert!(res.supporters >= 1, "the on-top trip must support the candidate");
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        let city = CityConfig::small().seed(6).generate();
        rknn_demand(&city, &[], &RknnParams { k: 0, max_walk_m: 100.0 });
    }
}
