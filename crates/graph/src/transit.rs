//! The transit network `Gr = (Vr, Er)` (paper Definition 2).

use std::collections::HashMap;

use ct_linalg::CsrMatrix;
use ct_spatial::Point;
use serde::{Deserialize, Serialize};

/// A bus stop: a transit vertex affiliated with a road vertex.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stop {
    /// The road node this stop sits on.
    pub road_node: u32,
    /// Projected position (duplicated from the road network for locality).
    pub pos: Point,
}

/// A transit edge: one hop between consecutive stops of some route,
/// realized as a path in the road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitEdge {
    /// One endpoint (stop id).
    pub u: u32,
    /// The other endpoint (stop id).
    pub v: u32,
    /// Travel length along the underlying road path, in meters.
    pub length: f64,
    /// Road edge ids traversed between the two stops.
    pub road_edges: Vec<u32>,
}

impl TransitEdge {
    /// The endpoint that is not `stop`.
    ///
    /// # Panics
    /// Panics if `stop` is not an endpoint.
    pub fn other(&self, stop: u32) -> u32 {
        if stop == self.u {
            self.v
        } else {
            assert_eq!(stop, self.v, "stop {stop} is not an endpoint");
            self.u
        }
    }
}

/// A bus route: an ordered sequence of stops whose consecutive pairs are
/// transit edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Ordered stop ids.
    pub stops: Vec<u32>,
}

impl Route {
    /// Number of stops on the route.
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Whether the route has no stops.
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }
}

/// The transit network: stops, edges, routes, and adjacency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitNetwork {
    stops: Vec<Stop>,
    edges: Vec<TransitEdge>,
    routes: Vec<Route>,
    adj_ptr: Vec<usize>,
    adj: Vec<(u32, u32)>,
    #[serde(skip)]
    edge_lookup: std::sync::OnceLock<HashMap<(u32, u32), u32>>,
}

impl TransitNetwork {
    fn build_adjacency(n: usize, edges: &[TransitEdge]) -> (Vec<usize>, Vec<(u32, u32)>) {
        let mut deg = vec![0usize; n];
        for e in edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let mut adj_ptr = Vec::with_capacity(n + 1);
        adj_ptr.push(0);
        for d in &deg {
            adj_ptr.push(adj_ptr.last().unwrap() + d);
        }
        let mut adj = vec![(0u32, 0u32); adj_ptr[n]];
        let mut cursor = adj_ptr[..n].to_vec();
        for (id, e) in edges.iter().enumerate() {
            adj[cursor[e.u as usize]] = (e.v, id as u32);
            cursor[e.u as usize] += 1;
            adj[cursor[e.v as usize]] = (e.u, id as u32);
            cursor[e.v as usize] += 1;
        }
        (adj_ptr, adj)
    }

    /// Number of stops `|Vr|`.
    pub fn num_stops(&self) -> usize {
        self.stops.len()
    }

    /// Number of transit edges `|Er|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of routes `|R|`.
    pub fn num_routes(&self) -> usize {
        self.routes.len()
    }

    /// Stop with id `s`.
    pub fn stop(&self, s: u32) -> &Stop {
        &self.stops[s as usize]
    }

    /// All stops.
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Transit edge with id `e`.
    pub fn edge(&self, e: u32) -> &TransitEdge {
        &self.edges[e as usize]
    }

    /// All transit edges.
    pub fn edges(&self) -> &[TransitEdge] {
        &self.edges
    }

    /// Route with id `r`.
    pub fn route(&self, r: u32) -> &Route {
        &self.routes[r as usize]
    }

    /// All routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Average number of stops per route (`len(R)` in the paper's Table 5).
    pub fn avg_route_len(&self) -> f64 {
        if self.routes.is_empty() {
            return 0.0;
        }
        self.routes.iter().map(Route::len).sum::<usize>() as f64 / self.routes.len() as f64
    }

    /// Neighbors of stop `s` as `(neighbor stop, edge id)` pairs.
    pub fn neighbors(&self, s: u32) -> &[(u32, u32)] {
        &self.adj[self.adj_ptr[s as usize]..self.adj_ptr[s as usize + 1]]
    }

    /// Id of the transit edge between `u` and `v`, if one exists.
    pub fn edge_between(&self, u: u32, v: u32) -> Option<u32> {
        let lookup = self.edge_lookup.get_or_init(|| {
            let mut m = HashMap::with_capacity(self.edges.len());
            for (id, e) in self.edges.iter().enumerate() {
                m.insert((e.u.min(e.v), e.u.max(e.v)), id as u32);
            }
            m
        });
        lookup.get(&(u.min(v), u.max(v))).copied()
    }

    /// The 0/1 adjacency matrix of the stop graph, the `A` in
    /// `λ(Gr) = ln(tr(e^A)/n)`.
    pub fn adjacency_matrix(&self) -> CsrMatrix {
        let pairs: Vec<(u32, u32)> = self.edges.iter().map(|e| (e.u, e.v)).collect();
        CsrMatrix::from_undirected_edges(self.stops.len(), &pairs)
    }

    /// A copy of this network with the given routes removed.
    ///
    /// Transit edges are kept only if some remaining route still uses them
    /// (shared corridors survive single-route removal) — this is the Fig. 1
    /// experiment's perturbation. Stops are kept (isolated stops contribute
    /// `e⁰` to the trace, exactly like the paper's fixed `|Vr|`).
    pub fn without_routes(&self, removed: &[u32]) -> TransitNetwork {
        let removed_set: Vec<bool> = {
            let mut v = vec![false; self.routes.len()];
            for &r in removed {
                v[r as usize] = true;
            }
            v
        };
        let mut edge_used = vec![false; self.edges.len()];
        for (rid, route) in self.routes.iter().enumerate() {
            if removed_set[rid] {
                continue;
            }
            for w in route.stops.windows(2) {
                if let Some(e) = self.edge_between(w[0], w[1]) {
                    edge_used[e as usize] = true;
                }
            }
        }
        let edges: Vec<TransitEdge> = self
            .edges
            .iter()
            .enumerate()
            .filter(|(i, _)| edge_used[*i])
            .map(|(_, e)| e.clone())
            .collect();
        let routes: Vec<Route> = self
            .routes
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed_set[*i])
            .map(|(_, r)| r.clone())
            .collect();
        let (adj_ptr, adj) = Self::build_adjacency(self.stops.len(), &edges);
        TransitNetwork {
            stops: self.stops.clone(),
            edges,
            routes,
            adj_ptr,
            adj,
            edge_lookup: std::sync::OnceLock::new(),
        }
    }

    /// A copy of this network with one route added over existing stops.
    ///
    /// Consecutive stop pairs lacking a transit edge get one from
    /// `edge_geom(u, v) -> (length, road_edge_ids)`; existing edges are
    /// reused. This is how a CT-Bus plan is applied to the network.
    ///
    /// # Panics
    /// Panics if the route references an unknown stop or repeats a stop
    /// consecutively.
    pub fn with_route_added<F>(&self, stop_seq: &[u32], mut edge_geom: F) -> TransitNetwork
    where
        F: FnMut(u32, u32) -> (f64, Vec<u32>),
    {
        let mut edges = self.edges.clone();
        for w in stop_seq.windows(2) {
            let (u, v) = (w[0], w[1]);
            assert!((u as usize) < self.stops.len(), "unknown stop {u}");
            assert!((v as usize) < self.stops.len(), "unknown stop {v}");
            assert_ne!(u, v, "route repeats stop {u} consecutively");
            if self.edge_between(u, v).is_none()
                && !edges[self.edges.len()..]
                    .iter()
                    .any(|e| (e.u.min(e.v), e.u.max(e.v)) == (u.min(v), u.max(v)))
            {
                let (length, road_edges) = edge_geom(u, v);
                edges.push(TransitEdge { u, v, length, road_edges });
            }
        }
        let mut routes = self.routes.clone();
        routes.push(Route { stops: stop_seq.to_vec() });
        let (adj_ptr, adj) = Self::build_adjacency(self.stops.len(), &edges);
        TransitNetwork {
            stops: self.stops.clone(),
            edges,
            routes,
            adj_ptr,
            adj,
            edge_lookup: std::sync::OnceLock::new(),
        }
    }

    /// Route ids passing through each stop (index = stop id).
    pub fn routes_per_stop(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.stops.len()];
        for (rid, route) in self.routes.iter().enumerate() {
            for &s in &route.stops {
                let v = &mut out[s as usize];
                if v.last() != Some(&(rid as u32)) {
                    v.push(rid as u32);
                }
            }
        }
        for v in &mut out {
            v.sort_unstable();
            v.dedup();
        }
        out
    }
}

/// Incremental builder for [`TransitNetwork`].
#[derive(Debug, Default)]
pub struct TransitNetworkBuilder {
    stops: Vec<Stop>,
    edges: Vec<TransitEdge>,
    routes: Vec<Route>,
    edge_ids: HashMap<(u32, u32), u32>,
}

impl TransitNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a stop and returns its id.
    pub fn add_stop(&mut self, road_node: u32, pos: Point) -> u32 {
        let id = self.stops.len() as u32;
        self.stops.push(Stop { road_node, pos });
        id
    }

    /// Number of stops added so far.
    pub fn num_stops(&self) -> usize {
        self.stops.len()
    }

    /// Adds a route as a stop sequence; consecutive stop pairs become transit
    /// edges whose geometry is produced by `edge_geom(u, v) -> (length,
    /// road_edge_ids)`. Edges shared with previously added routes are reused.
    ///
    /// # Panics
    /// Panics if the route references an unknown stop or repeats a stop
    /// consecutively.
    pub fn add_route<F>(&mut self, stop_seq: &[u32], mut edge_geom: F) -> u32
    where
        F: FnMut(u32, u32) -> (f64, Vec<u32>),
    {
        for w in stop_seq.windows(2) {
            let (u, v) = (w[0], w[1]);
            assert!((u as usize) < self.stops.len(), "unknown stop {u}");
            assert!((v as usize) < self.stops.len(), "unknown stop {v}");
            assert_ne!(u, v, "route repeats stop {u} consecutively");
            let key = (u.min(v), u.max(v));
            if !self.edge_ids.contains_key(&key) {
                let (length, road_edges) = edge_geom(u, v);
                let id = self.edges.len() as u32;
                self.edges.push(TransitEdge { u, v, length, road_edges });
                self.edge_ids.insert(key, id);
            }
        }
        let id = self.routes.len() as u32;
        self.routes.push(Route { stops: stop_seq.to_vec() });
        id
    }

    /// Finalizes the network.
    pub fn build(self) -> TransitNetwork {
        let (adj_ptr, adj) = TransitNetwork::build_adjacency(self.stops.len(), &self.edges);
        TransitNetwork {
            stops: self.stops,
            edges: self.edges,
            routes: self.routes,
            adj_ptr,
            adj,
            edge_lookup: std::sync::OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two crossing routes: 0-1-2 and 3-1-4 (sharing stop 1).
    fn cross_network() -> TransitNetwork {
        let mut b = TransitNetworkBuilder::new();
        for i in 0..5 {
            b.add_stop(i, Point::new(i as f64 * 100.0, 0.0));
        }
        let geom = |_u: u32, _v: u32| (100.0, vec![]);
        b.add_route(&[0, 1, 2], geom);
        b.add_route(&[3, 1, 4], geom);
        b.build()
    }

    #[test]
    fn builder_counts() {
        let net = cross_network();
        assert_eq!(net.num_stops(), 5);
        assert_eq!(net.num_edges(), 4);
        assert_eq!(net.num_routes(), 2);
        assert_eq!(net.avg_route_len(), 3.0);
    }

    #[test]
    fn shared_edges_are_reused() {
        let mut b = TransitNetworkBuilder::new();
        for i in 0..3 {
            b.add_stop(i, Point::new(i as f64, 0.0));
        }
        let geom = |_u: u32, _v: u32| (1.0, vec![]);
        b.add_route(&[0, 1, 2], geom);
        b.add_route(&[2, 1, 0], geom); // same corridor, reversed
        let net = b.build();
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.num_routes(), 2);
    }

    #[test]
    fn edge_between_is_symmetric() {
        let net = cross_network();
        assert_eq!(net.edge_between(0, 1), net.edge_between(1, 0));
        assert!(net.edge_between(0, 1).is_some());
        assert!(net.edge_between(0, 4).is_none());
    }

    #[test]
    fn adjacency_matrix_shape() {
        let net = cross_network();
        let a = net.adjacency_matrix();
        assert_eq!(a.n(), 5);
        assert_eq!(a.num_undirected_edges(), 4);
        assert!(a.has_edge(1, 4));
    }

    #[test]
    fn without_routes_drops_unshared_edges() {
        let net = cross_network();
        let pruned = net.without_routes(&[0]);
        assert_eq!(pruned.num_routes(), 1);
        assert_eq!(pruned.num_edges(), 2); // 3-1 and 1-4 survive
        assert_eq!(pruned.num_stops(), 5); // stops always survive
        assert!(pruned.edge_between(0, 1).is_none());
    }

    #[test]
    fn without_routes_keeps_shared_corridors() {
        let mut b = TransitNetworkBuilder::new();
        for i in 0..3 {
            b.add_stop(i, Point::new(i as f64, 0.0));
        }
        let geom = |_u: u32, _v: u32| (1.0, vec![]);
        b.add_route(&[0, 1, 2], geom);
        b.add_route(&[0, 1], geom); // shares edge 0-1
        let net = b.build();
        let pruned = net.without_routes(&[0]);
        assert!(pruned.edge_between(0, 1).is_some(), "shared edge must survive");
        assert!(pruned.edge_between(1, 2).is_none());
    }

    #[test]
    fn routes_per_stop_incidence() {
        let net = cross_network();
        let inc = net.routes_per_stop();
        assert_eq!(inc[1], vec![0, 1]); // the shared stop
        assert_eq!(inc[0], vec![0]);
        assert_eq!(inc[3], vec![1]);
    }

    #[test]
    fn with_route_added_creates_missing_edges() {
        let net = cross_network();
        // New route 0-3 (new edge) then 3-1 (existing edge).
        let bigger = net.with_route_added(&[0, 3, 1], |_, _| (123.0, vec![]));
        assert_eq!(bigger.num_routes(), 3);
        assert_eq!(bigger.num_edges(), 5);
        assert!(bigger.edge_between(0, 3).is_some());
        // Existing edge reused, not duplicated.
        assert_eq!(
            bigger.edges().iter().filter(|e| (e.u.min(e.v), e.u.max(e.v)) == (1, 3)).count(),
            1
        );
        // Original untouched.
        assert!(net.edge_between(0, 3).is_none());
    }

    #[test]
    fn with_route_added_is_usable_for_transfers() {
        let net = cross_network();
        let bigger = net.with_route_added(&[0, 4], |_, _| (50.0, vec![]));
        assert!(bigger.adjacency_matrix().has_edge(0, 4));
        assert_eq!(bigger.routes_per_stop()[0], vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "unknown stop")]
    fn unknown_stop_in_route_panics() {
        let mut b = TransitNetworkBuilder::new();
        b.add_stop(0, Point::new(0.0, 0.0));
        b.add_route(&[0, 9], |_, _| (1.0, vec![]));
    }
}
