//! Cross-crate integration over the extension systems: map matching feeds
//! demand, GTFS round-trips through planning, site selection and
//! augmentation run on the same cities, Chebyshev backs the same trace
//! pipeline as Lanczos, and the §2 measure comparison holds end to end.

use ct_bus::core::{
    augment_connectivity, select_sites, AugmentEval, AugmentParams, CtBusParams, Planner,
    PlannerMode, SiteParams,
};
use ct_bus::data::{City, CityConfig, DemandModel, GtfsFeed};
use ct_bus::graph::edge_connectivity;
use ct_bus::linalg::{
    algebraic_connectivity_exact, chebyshev_expv, lanczos_expv, natural_connectivity_exact,
    spectral_norm,
};
use ct_bus::matching::{simulate_trace, stitch_route, GpsSimConfig, HmmParams, MapMatcher};
use ct_bus::spatial::{GeoPoint, Projection};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn matched_demand_plans_the_same_route_as_truth() {
    let city = CityConfig::small().trajectories(120).seed(404).generate();
    let matcher = MapMatcher::new(&city.road, HmmParams::default());
    let cfg = GpsSimConfig { noise_sigma_m: 8.0, sample_interval_s: 8.0, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(9);
    let mut matched = Vec::new();
    for truth in city.trajectories.iter() {
        let trace = simulate_trace(&city.road, truth, &cfg, &mut rng);
        matched.extend(stitch_route(&city.road, &matcher.match_trace(&trace)));
    }
    let demand_true = DemandModel::from_city(&city);
    let demand_matched = DemandModel::new(&city.road, &matched);
    let params = CtBusParams { k: 8, ..CtBusParams::small_defaults() };
    let plan_true = Planner::new(&city, &demand_true, params).run(PlannerMode::EtaPre).best;
    let plan_matched = Planner::new(&city, &demand_matched, params).run(PlannerMode::EtaPre).best;
    // At taxi-grade noise the plans should share most of their stops.
    let shared = plan_matched.stops.iter().filter(|s| plan_true.stops.contains(s)).count();
    assert!(
        shared * 3 >= plan_matched.stops.len() * 2,
        "only {shared}/{} stops shared between matched and truth plans",
        plan_matched.stops.len()
    );
}

#[test]
fn gtfs_round_trip_preserves_planning_behaviour() {
    let city = CityConfig::small().seed(88).generate();
    let proj = Projection::new(GeoPoint::new(41.85, -87.65));
    let feed = GtfsFeed::from_transit(&city.transit, &proj);
    let (transit, _) = feed.into_transit(&city.road, &proj).expect("import");
    let round_tripped = city.with_transit(transit);
    let params = CtBusParams { k: 8, ..CtBusParams::small_defaults() };
    let demand = DemandModel::from_city(&city);
    let a = Planner::new(&city, &demand, params).run(PlannerMode::EtaPre).best;
    let b = Planner::new(&round_tripped, &demand, params).run(PlannerMode::EtaPre).best;
    // Same road nodes under the plan's stops (stop ids may be permuted).
    let nodes = |c: &City, stops: &[u32]| -> Vec<u32> {
        let mut v: Vec<u32> = stops.iter().map(|&s| c.transit.stop(s).road_node).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(nodes(&city, &a.stops), nodes(&round_tripped, &b.stops));
}

#[test]
fn sites_then_plan_covers_new_demand() {
    // Select sites in an under-served city, then verify the selection's
    // coverage exceeds that of the same number of random candidates.
    let city = CityConfig::small().routes(3).trajectories(300).seed(77).generate();
    let demand = DemandModel::from_city(&city);
    let params = SiteParams { num_sites: 5, ..Default::default() };
    let sel = select_sites(&city, &demand, &params);
    assert_eq!(sel.sites.len(), 5);
    // Greedy's first site alone must beat the selection's mean marginal.
    let first = sel.sites[0].marginal_demand;
    let mean = sel.covered_demand / 5.0;
    assert!(first >= mean, "greedy order violated: first {first} < mean {mean}");
}

#[test]
fn augmentation_beats_route_planning_on_pure_connectivity() {
    // Discrete edges are strictly more powerful than a connected path at
    // raising λ (they need no feasibility) — the quantitative form of the
    // paper's Fig. 6 trade-off, now measured end to end.
    let city = CityConfig::small().seed(55).generate();
    let demand = DemandModel::from_city(&city);
    let params = CtBusParams { k: 8, w: 0.0, ..CtBusParams::small_defaults() };
    let planner = Planner::new(&city, &demand, params);
    let route = planner.run(PlannerMode::EtaPre).best;

    let aug = augment_connectivity(
        planner.precomputed(),
        &AugmentParams { k: 8, eval: AugmentEval::Exact, ..Default::default() },
    );
    let base = natural_connectivity_exact(&planner.precomputed().base_adj).unwrap();
    let route_lambda = natural_connectivity_exact(
        &planner.precomputed().base_adj.with_added_unit_edges(&route.new_stop_pairs),
    )
    .unwrap();
    assert!(
        aug.lambda_after - aug.lambda_before >= route_lambda - base - 1e-9,
        "free edges lost to a constrained path: {} vs {}",
        aug.lambda_after - aug.lambda_before,
        route_lambda - base
    );
}

#[test]
fn section2_measure_comparison_holds_on_generated_city() {
    // Natural connectivity sees gradual damage; edge connectivity does not.
    let city = CityConfig::small().seed(31).generate();
    let transit = &city.transit;
    let adj0 = transit.adjacency_matrix();
    let natural0 = natural_connectivity_exact(&adj0).unwrap();
    let half: Vec<u32> = (0..transit.num_routes() as u32 / 2).collect();
    let damaged = transit.without_routes(&half);
    let natural1 = natural_connectivity_exact(&damaged.adjacency_matrix()).unwrap();
    assert!(natural1 < natural0, "route removal must lower natural connectivity");
    // Edge connectivity is already saturated at its floor and cannot fall
    // further in a way that tracks the damage.
    let e0 = edge_connectivity(transit).unwrap();
    let e1 = edge_connectivity(&damaged).unwrap();
    assert!(e0 <= 1, "transit networks have dangling stops: {e0}");
    assert!(e1 <= e0);
    // Fiedler value of the (possibly disconnected) damaged network is ~0.
    let f1 = algebraic_connectivity_exact(&damaged.adjacency_matrix()).unwrap();
    assert!(f1 < 0.05, "algebraic connectivity should have collapsed: {f1}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chebyshev_and_lanczos_agree_on_city_adjacencies(seed in 0u64..200) {
        let city = CityConfig::small().seed(seed).generate();
        let adj = city.transit.adjacency_matrix();
        let n = adj.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let rho = spectral_norm(&adj, &mut rng).unwrap();
        let v: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let lan = lanczos_expv(&adj, &v, 25).unwrap();
        let cheb = chebyshev_expv(&adj, &v, (3.0 * rho) as usize + 25, rho * 1.05).unwrap();
        let num: f64 = lan.iter().zip(&cheb).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        let den: f64 = lan.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(num < 1e-6 * den, "rel err {}", num / den);
    }

    #[test]
    fn gtfs_round_trip_is_topology_stable(seed in 0u64..100) {
        let city = CityConfig::small().seed(seed).generate();
        let proj = Projection::new(GeoPoint::new(40.7, -74.0));
        let feed = GtfsFeed::from_transit(&city.transit, &proj);
        let (net, stats) = feed.into_transit(&city.road, &proj).unwrap();
        prop_assert_eq!(net.num_stops(), city.transit.num_stops());
        prop_assert_eq!(net.num_routes(), city.transit.num_routes());
        prop_assert_eq!(net.num_edges(), city.transit.num_edges());
        prop_assert!(stats.max_snap_m < 1.0);
    }
}
