//! Per-edge commuting demand aggregation (paper Eq. 4).
//!
//! The CT-Bus objective never touches raw trajectories at query time: every
//! road edge `e` carries `f_e` (how many trajectories traverse it) and the
//! weight `f_e · |e|`, and route demand is a sum of edge weights. This is
//! why the method is "independent of |D|" (§6.3).

use ct_graph::RoadNetwork;
use serde::{Deserialize, Serialize};

use crate::city::City;
use crate::trajectory::Trajectory;

/// Aggregated demand over the road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// `f_e`: trajectory count per road edge.
    counts: Vec<u32>,
    /// `f_e · |e|`: demand weight per road edge.
    weights: Vec<f64>,
}

impl DemandModel {
    /// Aggregates a trajectory corpus over a road network.
    pub fn new(road: &RoadNetwork, trajectories: &[Trajectory]) -> Self {
        let mut counts = vec![0u32; road.num_edges()];
        for t in trajectories {
            for &e in &t.edges {
                counts[e as usize] += 1;
            }
        }
        let weights = counts
            .iter()
            .enumerate()
            .map(|(e, &f)| f as f64 * road.edge(e as u32).length)
            .collect();
        DemandModel { counts, weights }
    }

    /// Convenience constructor from a [`City`].
    pub fn from_city(city: &City) -> Self {
        Self::new(&city.road, &city.trajectories)
    }

    /// Number of road edges covered.
    pub fn num_edges(&self) -> usize {
        self.counts.len()
    }

    /// `f_e` for road edge `e`.
    pub fn count(&self, e: u32) -> u32 {
        self.counts[e as usize]
    }

    /// `f_e · |e|` for road edge `e`.
    pub fn weight(&self, e: u32) -> f64 {
        self.weights[e as usize]
    }

    /// Total demand weight of a road path: `Σ f_e · |e|` (paper Eq. 4).
    pub fn path_weight(&self, road_edges: &[u32]) -> f64 {
        road_edges.iter().map(|&e| self.weight(e)).sum()
    }

    /// Total demand weight across the whole network.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Fraction of road edges with nonzero demand.
    pub fn coverage(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().filter(|&&c| c > 0).count() as f64 / self.counts.len() as f64
    }

    /// Zeroes the demand on the given road edges.
    ///
    /// Used by multi-route planning (§6.3): edges covered by an
    /// already-planned route should not attract the next one. Demand is
    /// self-contained, so zeroing needs no road network — callers no longer
    /// have to clone (or even hold) one to update a shared model.
    pub fn zero_edges(&mut self, road_edges: &[u32]) {
        for &e in road_edges {
            self.counts[e as usize] = 0;
            self.weights[e as usize] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct_graph::RoadEdge;
    use ct_spatial::Point;

    fn line_road() -> RoadNetwork {
        let positions = (0..5).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let edges = (0..4).map(|i| RoadEdge { u: i, v: i + 1, length: 100.0 }).collect();
        RoadNetwork::new(positions, edges)
    }

    #[test]
    fn counts_and_weights() {
        let road = line_road();
        let trajs = vec![
            Trajectory::new(vec![0, 1, 2], vec![0, 1]),
            Trajectory::new(vec![1, 2, 3], vec![1, 2]),
        ];
        let d = DemandModel::new(&road, &trajs);
        assert_eq!(d.count(0), 1);
        assert_eq!(d.count(1), 2);
        assert_eq!(d.count(3), 0);
        assert_eq!(d.weight(1), 200.0);
        assert_eq!(d.path_weight(&[0, 1]), 300.0);
        assert_eq!(d.total_weight(), 400.0);
        assert_eq!(d.coverage(), 0.75);
    }

    #[test]
    fn empty_corpus_is_all_zero() {
        let road = line_road();
        let d = DemandModel::new(&road, &[]);
        assert_eq!(d.total_weight(), 0.0);
        assert_eq!(d.coverage(), 0.0);
    }

    #[test]
    fn zeroing_edges_for_multi_route() {
        let road = line_road();
        let trajs = vec![Trajectory::new(vec![0, 1, 2, 3], vec![0, 1, 2])];
        let mut d = DemandModel::new(&road, &trajs);
        d.zero_edges(&[1]);
        assert_eq!(d.count(1), 0);
        assert_eq!(d.weight(1), 0.0);
        assert_eq!(d.count(0), 1);
        assert_eq!(d.path_weight(&[0, 1, 2]), 200.0);
    }
}
