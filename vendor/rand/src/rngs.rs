//! Concrete generators (stand-in for `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Implemented as xoshiro256++ with SplitMix64 seed expansion. Upstream
/// `rand`'s `StdRng` is ChaCha12, so the *stream* differs, but every consumer
/// in this workspace only relies on determinism-under-seed and reasonable
/// statistical quality, both of which hold here.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step (Blackman & Vigna, public domain reference).
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&w));
            let z = rng.gen_range(0..=4u32);
            assert!(z <= 4);
        }
    }
}
