//! The parallel expansion engine behind [`crate::eta::Planner`].
//!
//! Algorithm 1's inner loop — poll the most promising candidate path,
//! extend it at both ends, re-score, re-insert — is run here as a
//! **batch-synchronous epoch loop** so the per-path work can fan out over
//! threads while results stay bit-identical under any worker count:
//!
//! 1. **Drain** (sequential): pop up to `Parallelism::batch` entries off
//!    the shared max-priority frontier, in strict best-first order,
//!    pruning against the epoch-start incumbent `O_max`.
//! 2. **Expand** (parallel): each drained path is extended and scored by
//!    an [`ExpandCtx`] — a `Send` context borrowing the city and
//!    pre-computation immutably and owning thread-local Lanczos/overlay
//!    scratch. Workers pull batch indices off an atomic counter (work
//!    stealing, same discipline as `precompute::compute_deltas`); every
//!    expansion is a pure function of the drained path and the frozen
//!    probes, so the schedule cannot affect values.
//! 3. **Merge** (sequential): results are applied in batch index order —
//!    incumbent updates, domination-table checks, and re-insertions happen
//!    exactly as they would in a single-threaded run of the same batched
//!    algorithm.
//!
//! Setting `batch = 1` recovers the paper's poll-one-expand-one loop
//! exactly; larger batches trade strict best-first order for parallelism.
//! The batch size is a parameter of the *algorithm* (fixed per run), the
//! thread count is a parameter of the *machine* (never observable in the
//! output). `Planner::run_sequential` drives this same loop inline and is
//! the reference the parallel path is tested against.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Mutex, RwLock};

use ct_data::City;
use ct_linalg::{EdgeOverlay, LanczosWorkspace};
use ct_spatial::{turn_angle, TurnClass};

use crate::params::CtBusParams;
use crate::plan::RoutePlan;
use crate::precompute::Precomputed;
use crate::ranked::{IncrementalBound, RankedList};
use crate::scorer::online_increment_in;

/// Resolved per-run flags of a [`crate::PlannerMode`] (see the table in
/// [`crate::eta`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ModeConfig {
    pub online_scoring: bool,
    pub all_neighbors: bool,
    pub domination: bool,
    pub seed_all: bool,
    pub new_edges_only: bool,
    pub w_override: Option<f64>,
}

/// A candidate path under expansion.
#[derive(Debug, Clone)]
pub(crate) struct CandPath {
    pub stops: Vec<u32>,
    pub edges: Vec<u32>,
    pub demand_sum: f64,
    /// Objective value; for linear scoring this is the running `Σ L_e[e]`,
    /// for online scoring the latest full evaluation.
    pub obj: f64,
    pub tn: u32,
    pub bound: IncrementalBound,
    pub ub: f64,
}

impl CandPath {
    fn front_stop(&self) -> u32 {
        self.stops[0]
    }

    fn back_stop(&self) -> u32 {
        *self.stops.last().expect("paths are never empty")
    }

    fn contains_stop(&self, s: u32) -> bool {
        self.stops.contains(&s)
    }

    fn contains_edge(&self, e: u32) -> bool {
        self.edges.contains(&e)
    }

    fn dt_key(&self) -> (u32, u32) {
        let first = self.edges[0];
        let last = *self.edges.last().expect("paths are never empty");
        (first.min(last), first.max(last))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    Front,
    Back,
}

struct QEntry {
    ub: f64,
    seq: u64,
    path: CandPath,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.ub == other.ub && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on ub; FIFO on ties for determinism.
        self.ub
            .partial_cmp(&other.ub)
            .expect("bounds are not NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One unit of parallel work: evaluate a seed candidate, or extend a
/// drained frontier path.
pub(crate) enum WorkItem {
    /// Score candidate edge `id` as a fresh single-edge path.
    Seed(u32),
    /// Extend this path at both ends per the mode's neighbor policy.
    Expand(CandPath),
}

/// What one expansion produced: zero or more scored successor paths (in a
/// deterministic order) plus the number of objective evaluations spent.
#[derive(Default)]
pub(crate) struct ExpandOut {
    pub paths: Vec<CandPath>,
    pub evals: u64,
}

/// Thread-local scratch for online (SLQ) scoring: a reusable overlay of
/// the base adjacency, a Lanczos workspace, and an edge-id buffer.
struct OnlineScratch<'a> {
    overlay: EdgeOverlay<'a>,
    ws: LanczosWorkspace,
    edge_buf: Vec<u32>,
}

/// The per-worker expansion context: everything needed to check
/// feasibility, extend, and score candidate paths, independent of any
/// other worker.
///
/// Borrows the [`City`] and [`Precomputed`] immutably (shared across
/// workers) and owns its scoring scratch, so values are `Send` and every
/// method is a pure function of its inputs and the frozen probes —
/// the property the engine's bit-identity contract rests on.
pub(crate) struct ExpandCtx<'a> {
    city: &'a City,
    pre: &'a Precomputed,
    params: &'a CtBusParams,
    cfg: ModeConfig,
    /// Effective objective weight (mode override applied).
    w: f64,
    /// Per-candidate `L_e(w)` values for linear scoring (empty when online).
    le_values: &'a [f64],
    /// Ranked list backing the Algorithm 2 incremental bound.
    bound_list: &'a RankedList,
    /// SLQ scratch; `Some` iff the mode scores online.
    scratch: Option<OnlineScratch<'a>>,
    /// Objective evaluations performed since the last [`Self::take_evals`].
    evals: u64,
}

impl<'a> ExpandCtx<'a> {
    pub(crate) fn new(
        city: &'a City,
        pre: &'a Precomputed,
        params: &'a CtBusParams,
        cfg: ModeConfig,
        w: f64,
        le_values: &'a [f64],
        bound_list: &'a RankedList,
    ) -> Self {
        let scratch = cfg.online_scoring.then(|| OnlineScratch {
            overlay: EdgeOverlay::empty(&pre.base_adj),
            ws: LanczosWorkspace::new(),
            edge_buf: Vec::new(),
        });
        ExpandCtx { city, pre, params, cfg, w, le_values, bound_list, scratch, evals: 0 }
    }

    /// Whether candidate `id` may appear on a route under the mode.
    fn admissible(&self, id: u32) -> bool {
        !self.cfg.new_edges_only || !self.pre.candidates.edge(id).existing
    }

    /// The path-level objective upper bound from the incremental bound.
    fn ub_of(&self, bound: &IncrementalBound) -> f64 {
        if self.cfg.online_scoring {
            self.w * bound.ub / self.pre.d_max
                + (1.0 - self.w) * self.pre.conn_path_ub / self.pre.lambda_max
        } else {
            bound.ub
        }
    }

    /// Full objective evaluation of a path given by candidate ids.
    fn eval_full(&mut self, edges: &[u32], demand_sum: f64) -> f64 {
        self.evals += 1;
        if self.cfg.online_scoring {
            let conn = self.online_increment(edges);
            self.w * demand_sum / self.pre.d_max + (1.0 - self.w) * conn / self.pre.lambda_max
        } else {
            edges.iter().map(|&e| self.le_values[e as usize]).sum()
        }
    }

    /// SLQ connectivity increment through the thread-local scratch.
    fn online_increment(&mut self, edges: &[u32]) -> f64 {
        let pairs = self.pre.candidates.new_stop_pairs(edges);
        if pairs.is_empty() {
            return 0.0;
        }
        let s = self.scratch.as_mut().expect("online scoring has scratch");
        online_increment_in(
            &self.pre.estimator,
            self.pre.base_trace,
            &mut s.overlay,
            &mut s.ws,
            &pairs,
        )
    }

    /// Drains the evaluation counter (per work item, so totals can be
    /// summed deterministically in merge order).
    fn take_evals(&mut self) -> u64 {
        std::mem::take(&mut self.evals)
    }

    /// Executes one work item. Pure: the output depends only on the item,
    /// the mode, and the frozen probes — never on scheduling.
    pub(crate) fn run_item(&mut self, item: &WorkItem) -> ExpandOut {
        let mut out = ExpandOut::default();
        match item {
            WorkItem::Seed(id) => self.expand_seed(*id, &mut out),
            WorkItem::Expand(path) => {
                if self.cfg.all_neighbors {
                    self.expand_all_neighbors(path, &mut out);
                } else {
                    self.expand_best_neighbor(path, &mut out);
                }
            }
        }
        out.evals = self.take_evals();
        out
    }

    /// Algorithm 1 lines 19–27: score candidate `id` as a seed path.
    fn expand_seed(&mut self, id: u32, out: &mut ExpandOut) {
        let e = self.pre.candidates.edge(id);
        let obj = self.eval_full(&[id], e.demand);
        let bound = IncrementalBound::for_seed(self.bound_list, self.params.k, id);
        let mut path = CandPath {
            stops: vec![e.u, e.v],
            edges: vec![id],
            demand_sum: e.demand,
            obj,
            tn: 0,
            bound,
            ub: 0.0,
        };
        path.ub = self.ub_of(&path.bound);
        out.paths.push(path);
    }

    /// Best-neighbor expansion (lines 8–13): pick the best feasible
    /// extension at each end, then `cp ← be + cp + ee`.
    fn expand_best_neighbor(&mut self, cp: &CandPath, out: &mut ExpandOut) {
        let cands = &self.pre.candidates;
        let mut newp = cp.clone();
        let mut extended = false;
        for end in [End::Front, End::Back] {
            let anchor = match end {
                End::Front => newp.front_stop(),
                End::Back => newp.back_stop(),
            };
            let mut best_ext: Option<(u32, f64)> = None;
            for &e_id in cands.incident(anchor) {
                if !self.admissible(e_id) {
                    continue;
                }
                if !self.extension_feasible(&newp, e_id, end) {
                    continue;
                }
                let score = if self.cfg.online_scoring {
                    // Build the would-be edge list in the reusable buffer
                    // (taken out of the scratch so `eval_full` can borrow
                    // `self` mutably, then put back).
                    let mut buf = std::mem::take(
                        &mut self.scratch.as_mut().expect("online scoring has scratch").edge_buf,
                    );
                    buf.clear();
                    match end {
                        End::Front => {
                            buf.push(e_id);
                            buf.extend_from_slice(&newp.edges);
                        }
                        End::Back => {
                            buf.extend_from_slice(&newp.edges);
                            buf.push(e_id);
                        }
                    }
                    let score = self.eval_full(&buf, newp.demand_sum + cands.edge(e_id).demand);
                    self.scratch.as_mut().expect("online scoring has scratch").edge_buf = buf;
                    score
                } else {
                    self.evals += 1;
                    newp.obj + self.le_values[e_id as usize]
                };
                if best_ext.is_none_or(|(_, s)| score > s) {
                    best_ext = Some((e_id, score));
                }
            }
            if let Some((e_id, _)) = best_ext {
                if self.try_append(&mut newp, e_id, end) {
                    extended = true;
                }
            }
        }
        if !extended {
            return;
        }
        if self.cfg.online_scoring {
            let edges = std::mem::take(&mut newp.edges);
            newp.obj = self.eval_full(&edges, newp.demand_sum);
            newp.edges = edges;
        }
        newp.ub = self.ub_of(&newp.bound);
        out.paths.push(newp);
    }

    /// ETA-AN ablation: emit every feasible single-edge extension, front
    /// end first, in incident order.
    fn expand_all_neighbors(&mut self, cp: &CandPath, out: &mut ExpandOut) {
        let cands = &self.pre.candidates;
        for end in [End::Front, End::Back] {
            let anchor = match end {
                End::Front => cp.front_stop(),
                End::Back => cp.back_stop(),
            };
            for &e_id in cands.incident(anchor) {
                if !self.admissible(e_id) {
                    continue;
                }
                let mut p = cp.clone();
                if !self.try_append(&mut p, e_id, end) {
                    continue;
                }
                if self.cfg.online_scoring {
                    let edges = std::mem::take(&mut p.edges);
                    p.obj = self.eval_full(&edges, p.demand_sum);
                    p.edges = edges;
                } else {
                    self.evals += 1;
                }
                p.ub = self.ub_of(&p.bound);
                out.paths.push(p);
            }
        }
    }

    /// Feasibility of appending candidate `e_id` at `end` (circle-free,
    /// length, turn checks) without mutating the path.
    fn extension_feasible(&self, path: &CandPath, e_id: u32, end: End) -> bool {
        if path.edges.len() >= self.params.k || path.contains_edge(e_id) {
            return false;
        }
        let e = self.pre.candidates.edge(e_id);
        let anchor = match end {
            End::Front => path.front_stop(),
            End::Back => path.back_stop(),
        };
        if e.u != anchor && e.v != anchor {
            return false;
        }
        let far = e.other(anchor);
        if path.contains_stop(far) {
            return false;
        }
        match self.turn_class_at(path, far, end) {
            TurnClass::Sharp => false,
            TurnClass::Turn => path.tn < self.params.tn_max,
            TurnClass::Straight => true,
        }
    }

    fn turn_class_at(&self, path: &CandPath, far: u32, end: End) -> TurnClass {
        if path.stops.len() < 2 {
            return TurnClass::Straight;
        }
        let transit = &self.city.transit;
        let pos = |s: u32| transit.stop(s).pos;
        let angle = match end {
            End::Back => {
                let n = path.stops.len();
                turn_angle(&pos(path.stops[n - 2]), &pos(path.stops[n - 1]), &pos(far))
            }
            End::Front => turn_angle(&pos(far), &pos(path.stops[0]), &pos(path.stops[1])),
        };
        TurnClass::from_angle(angle)
    }

    /// Appends `e_id` to `path` at `end`; returns false (path unchanged in
    /// any meaningful way) if the extension is infeasible.
    fn try_append(&self, path: &mut CandPath, e_id: u32, end: End) -> bool {
        if !self.extension_feasible(path, e_id, end) {
            return false;
        }
        let e = self.pre.candidates.edge(e_id);
        let anchor = match end {
            End::Front => path.front_stop(),
            End::Back => path.back_stop(),
        };
        let far = e.other(anchor);
        if self.turn_class_at(path, far, end) == TurnClass::Turn {
            path.tn += 1;
        }
        match end {
            End::Front => {
                path.stops.insert(0, far);
                path.edges.insert(0, e_id);
            }
            End::Back => {
                path.stops.push(far);
                path.edges.push(e_id);
            }
        }
        path.demand_sum += e.demand;
        if !self.cfg.online_scoring {
            path.obj += self.le_values[e_id as usize];
        }
        path.bound.append(self.bound_list, e_id);
        true
    }

    /// Converts the winning path into a reported plan, re-scoring its
    /// connectivity with the SLQ estimator (the paper does the same for
    /// ETA-Pre's final answer, Fig. 9).
    pub(crate) fn plan_from(&self, cp: &CandPath, w: f64) -> RoutePlan {
        let pre = self.pre;
        let cands = &pre.candidates;
        let online =
            crate::scorer::ConnScorer::online(&pre.estimator, &pre.base_adj, pre.base_trace);
        let conn = online.increment(&cp.edges, cands);
        let demand = cp.demand_sum;
        let objective = pre.objective(w, demand, conn);
        let length_m = cp.edges.iter().map(|&e| cands.edge(e).length_m).sum();
        RoutePlan {
            stops: cp.stops.clone(),
            cand_edges: cp.edges.clone(),
            new_stop_pairs: cands.new_stop_pairs(&cp.edges),
            demand,
            conn_increment: conn,
            objective,
            turns: cp.tn,
            length_m,
        }
    }
}

/// The shared best-first frontier plus all merge-side state: incumbent,
/// domination table, iteration/trace accounting.
///
/// All mutation happens on the driving thread — draining and merging are
/// sequential by construction, which is what makes the engine's output
/// independent of worker scheduling.
pub(crate) struct Frontier {
    q: BinaryHeap<QEntry>,
    dt: HashMap<(u32, u32), f64>,
    seq: u64,
    domination: bool,
    k: usize,
    tn_max: u32,
    it_max: u64,
    record_every: u64,
    /// Best objective found so far (the incumbent `O_max`).
    pub o_max: f64,
    /// The incumbent path.
    pub best: Option<CandPath>,
    /// Queue polls performed.
    pub it: u64,
    /// Convergence trace `(iteration, best objective so far)`.
    pub trace: Vec<(u64, f64)>,
    /// Objective evaluations, accumulated in merge order.
    pub evaluations: u64,
}

impl Frontier {
    pub(crate) fn new(cfg: &ModeConfig, params: &CtBusParams) -> Self {
        Frontier {
            q: BinaryHeap::new(),
            dt: HashMap::new(),
            seq: 0,
            domination: cfg.domination,
            k: params.k,
            tn_max: params.tn_max,
            it_max: params.it_max,
            record_every: params.record_every,
            o_max: f64::NEG_INFINITY,
            best: None,
            it: 0,
            trace: Vec::new(),
            evaluations: 0,
        }
    }

    /// Merges one evaluated seed (Algorithm 1 lines 22–27): update the
    /// incumbent, enqueue unconditionally.
    pub(crate) fn push_seed(&mut self, path: CandPath) {
        if path.obj > self.o_max {
            self.o_max = path.obj;
            self.best = Some(path.clone());
        }
        self.q.push(QEntry { ub: path.ub, seq: self.seq, path });
        self.seq += 1;
    }

    /// Seals the seeding phase: records the trace origin.
    pub(crate) fn finish_seeding(&mut self) {
        self.trace.push((0, self.o_max.max(0.0)));
    }

    /// Drains the next epoch's batch in strict best-first order, stopping
    /// at the batch size, the iteration cap, or the first entry whose
    /// upper bound cannot beat the epoch-start incumbent (at which point
    /// the whole search is exhausted — the heap is ordered by bound).
    pub(crate) fn drain_epoch(&mut self, batch: usize) -> Vec<WorkItem> {
        let mut items = Vec::new();
        while items.len() < batch && self.it < self.it_max {
            let Some(top) = self.q.peek() else { break };
            if top.ub <= self.o_max {
                break;
            }
            let entry = self.q.pop().expect("peeked entry exists");
            self.it += 1;
            if self.it.is_multiple_of(self.record_every) {
                self.trace.push((self.it, self.o_max));
            }
            items.push(WorkItem::Expand(entry.path));
        }
        items
    }

    /// Merges one successor path (lines 14–16 + Algorithm 1's
    /// `further_expansion`, lines 29–34): incumbent update, then the
    /// bound/turn/length gates, the domination table, and the enqueue.
    pub(crate) fn absorb(&mut self, path: CandPath) {
        if path.obj > self.o_max {
            self.o_max = path.obj;
            self.best = Some(path.clone());
        }
        if path.tn >= self.tn_max || path.edges.len() >= self.k || path.ub <= self.o_max {
            return;
        }
        if self.domination {
            let key = path.dt_key();
            let entry = self.dt.entry(key).or_insert(f64::NEG_INFINITY);
            if path.obj <= *entry {
                return;
            }
            *entry = path.obj;
        }
        self.q.push(QEntry { ub: path.ub, seq: self.seq, path });
        self.seq += 1;
    }

    /// Seals the run: appends the final trace point.
    pub(crate) fn finish(&mut self) {
        self.trace.push((self.it, self.o_max.max(0.0)));
    }
}

/// Epoch-scoped shared state of the work-stealing pool.
///
/// **Epoch hand-off protocol.** Earlier revisions synchronized each epoch
/// with a start/end [`std::sync::Barrier`] pair — two full rendezvous per
/// epoch, which short queries (many epochs, tiny batches) paid dearly
/// for. The pool now hands epochs off lock-free: the driver publishes a
/// batch by bumping `epoch` (release) and unparking the workers; each
/// worker re-reads `epoch` (acquire) until it moves, steals until the
/// batch is drained, then decrements `active` — the last one out unparks
/// the driver, which parks until `active` reaches zero. Park/unpark
/// tolerate spurious wakeups on both sides (each wait is a re-checked
/// loop), and the release bump / acquire load pair carries the batch,
/// cursor, and `active` writes across to the workers.
struct PoolShared {
    /// The current epoch's batch (workers read, the driver writes strictly
    /// between epochs, while every worker is parked or winding down).
    batch: RwLock<Vec<WorkItem>>,
    /// Work-stealing cursor into `batch`.
    next: AtomicUsize,
    /// Per-item results, tagged with batch indices for deterministic
    /// merge ordering.
    results: Mutex<Vec<(usize, ExpandOut)>>,
    /// First panic payload caught inside an expansion this epoch; the
    /// driver re-raises it after the epoch completes (a panicking worker
    /// still decrements `active`, so the driver always wakes).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Raised by the driver before the final epoch bump so workers exit.
    done: AtomicBool,
    /// Epoch counter: bumped (release) to publish a new batch; workers
    /// spin-park until it moves past the value they last served.
    epoch: AtomicU64,
    /// Workers still stealing from the current batch; the driver parks
    /// until the last one decrements this to zero and unparks it.
    active: AtomicUsize,
    /// The driving thread, for end-of-epoch unparking.
    driver: std::thread::Thread,
}

/// Steals items off the current batch into `local` until the cursor runs
/// out. Shared by workers and the driving thread. Never unwinds: a panic
/// inside an expansion is parked in `shared.panic` and the remaining
/// items are abandoned, so every participant still completes the epoch
/// (workers decrement `active` on the way out, waking the driver).
fn steal_loop(shared: &PoolShared, ctx: &mut ExpandCtx<'_>) {
    let batch = shared.batch.read().expect("batch lock not poisoned");
    let mut local: Vec<(usize, ExpandOut)> = Vec::new();
    loop {
        let i = shared.next.fetch_add(1, AtomicOrdering::Relaxed);
        if i >= batch.len() {
            break;
        }
        // ctlint::allow(lock-discipline): the read guard is the batch borrow itself — writers only run between epochs, fenced by the epoch hand-off (workers hold no guard while parked)
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.run_item(&batch[i]))) {
            Ok(out) => local.push((i, out)),
            Err(payload) => {
                let mut slot = shared.panic.lock().expect("panic lock not poisoned");
                slot.get_or_insert(payload);
                // Park the cursor at the end so everyone stops stealing.
                shared.next.store(batch.len(), AtomicOrdering::Relaxed);
                break;
            }
        }
    }
    drop(batch);
    if !local.is_empty() {
        shared.results.lock().expect("results lock not poisoned").extend(local);
    }
}

/// Dispatches `items` across the pool (or inline when no pool is active)
/// and returns the outputs in batch index order.
pub(crate) struct Executor<'scope, 'a> {
    pool: Option<&'scope PoolShared>,
    /// Handles of the pool's parked workers, for epoch-start unparking
    /// (empty when running inline).
    workers: Vec<std::thread::Thread>,
    main_ctx: ExpandCtx<'a>,
}

impl<'scope, 'a> Executor<'scope, 'a> {
    fn inline(main_ctx: ExpandCtx<'a>) -> Self {
        Executor { pool: None, workers: Vec::new(), main_ctx }
    }

    /// The driving thread's expansion context (used for `plan_from`).
    pub(crate) fn ctx(&self) -> &ExpandCtx<'a> {
        &self.main_ctx
    }

    /// Maps `items` through the pool; output `i` corresponds to input `i`.
    pub(crate) fn map(&mut self, items: Vec<WorkItem>) -> Vec<ExpandOut> {
        match self.pool {
            // Single items aren't worth an epoch hand-off; results are
            // identical either way because expansion is pure.
            Some(shared) if items.len() > 1 => {
                {
                    let mut b = shared.batch.write().expect("batch lock not poisoned");
                    *b = items;
                }
                shared.next.store(0, AtomicOrdering::Relaxed);
                // Publish the epoch: `active` and the cursor are written
                // before the release bump, so a worker's acquire load of
                // `epoch` sees them; unpark wakes anyone already parked.
                shared.active.store(self.workers.len(), AtomicOrdering::Relaxed);
                shared.epoch.fetch_add(1, AtomicOrdering::Release);
                for w in &self.workers {
                    w.unpark();
                }
                steal_loop(shared, &mut self.main_ctx);
                // Wait for the stragglers; the last worker out unparks us.
                // Spurious unparks just re-check the counter.
                while shared.active.load(AtomicOrdering::Acquire) != 0 {
                    std::thread::park();
                }
                if let Some(payload) = shared.panic.lock().expect("panic lock not poisoned").take()
                {
                    // All workers are parked awaiting the next epoch;
                    // unwinding runs ShutdownGuard::drop, which releases
                    // and joins them before the panic propagates.
                    std::panic::resume_unwind(payload);
                }
                let mut tagged =
                    std::mem::take(&mut *shared.results.lock().expect("results lock not poisoned"));
                tagged.sort_unstable_by_key(|(i, _)| *i);
                tagged.into_iter().map(|(_, out)| out).collect()
            }
            _ => items.iter().map(|item| self.main_ctx.run_item(item)).collect(),
        }
    }
}

/// Raises the pool's `done` flag and publishes a final epoch so parked
/// workers wake and exit — on normal completion *and* when the driver
/// unwinds (a panic in merge logic must not leave workers parked forever
/// inside `std::thread::scope`'s implicit join).
struct ShutdownGuard<'p> {
    shared: &'p PoolShared,
    workers: Vec<std::thread::Thread>,
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.shared.done.store(true, AtomicOrdering::Release);
        self.shared.epoch.fetch_add(1, AtomicOrdering::Release);
        for w in &self.workers {
            w.unpark();
        }
    }
}

/// Runs `drive` with an [`Executor`] backed by `threads` expansion
/// contexts: the driving thread plus `threads − 1` scoped workers parked
/// on the epoch counter. With `threads <= 1` no pool is created and every
/// item runs inline — same results either way.
pub(crate) fn with_executor<'a, R>(
    threads: usize,
    mk_ctx: &(dyn Fn() -> ExpandCtx<'a> + Sync),
    drive: impl FnOnce(&mut Executor<'_, 'a>) -> R,
) -> R {
    if threads <= 1 {
        return drive(&mut Executor::inline(mk_ctx()));
    }
    let shared = PoolShared {
        batch: RwLock::new(Vec::new()),
        next: AtomicUsize::new(0),
        results: Mutex::new(Vec::new()),
        panic: Mutex::new(None),
        done: AtomicBool::new(false),
        epoch: AtomicU64::new(0),
        active: AtomicUsize::new(0),
        driver: std::thread::current(),
    };
    std::thread::scope(|s| {
        let mut workers = Vec::with_capacity(threads - 1);
        for _ in 0..threads - 1 {
            let shared = &shared;
            let handle = s.spawn(move || {
                let mut ctx = mk_ctx();
                let mut seen = 0u64;
                loop {
                    // Await the next epoch. A spurious wakeup (or a park
                    // that returns immediately because an unpark token was
                    // already banked) just re-checks the counter.
                    loop {
                        let e = shared.epoch.load(AtomicOrdering::Acquire);
                        if e != seen {
                            seen = e;
                            break;
                        }
                        std::thread::park();
                    }
                    if shared.done.load(AtomicOrdering::Acquire) {
                        return;
                    }
                    steal_loop(shared, &mut ctx);
                    // Last worker out hands the epoch back to the driver.
                    if shared.active.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
                        shared.driver.unpark();
                    }
                }
            });
            workers.push(handle.thread().clone());
        }
        let _guard = ShutdownGuard { shared: &shared, workers: workers.clone() };
        let mut executor = Executor { pool: Some(&shared), workers, main_ctx: mk_ctx() };
        drive(&mut executor)
    })
}
